#!/usr/bin/env python
"""A guided tour of the pipeline's internals, stage by stage.

Runs the machinery of Algs. 1/2 *manually* — prototype generation, the
maximum candidate set, local constraint checking, one non-local token
walk, the full-walk verification — printing the state after every stage,
then cross-checks the hand-driven result against `run_pipeline` and a
brute-force audit.  Read together with docs/INTERNALS.md.

Run:  python examples/pipeline_tour.py
"""

from repro import PatternTemplate, PipelineOptions, run_pipeline
from repro.analysis import format_table
from repro.analysis.audit import audit_result
from repro.core import (
    SearchState,
    generate_constraints,
    generate_prototypes,
    max_candidate_set,
    non_local_constraint_checking,
)
from repro.core.lcc import local_constraint_checking
from repro.graph.generators import planted_graph
from repro.runtime import Engine, MessageStats, PartitionedGraph

TEMPLATE_EDGES = [(0, 1), (1, 2), (2, 0), (2, 3)]
TEMPLATE_LABELS = {0: 1, 1: 2, 2: 3, 3: 4}


def main() -> None:
    template = PatternTemplate.from_edges(
        TEMPLATE_EDGES, TEMPLATE_LABELS, name="tour"
    )
    graph = planted_graph(
        120, 300, TEMPLATE_EDGES, [1, 2, 3, 4], copies=3, num_labels=5, seed=77
    )
    print(f"Background graph: {graph.num_vertices} vertices, "
          f"{graph.num_edges} edges; template: triangle + tail, k=1\n")

    # Stage 1 — prototypes.
    protos = generate_prototypes(template, 1)
    print(f"[1] Prototype generation: {protos.level_counts()} per level")
    for proto in protos:
        print(f"    {proto.name}: edges {sorted(proto.graph.edges())}, "
              f"removed {proto.removed_edges()}")

    # Stage 2 — the maximum candidate set (paid once).
    pgraph = PartitionedGraph(graph, 4)
    engine = Engine(pgraph, MessageStats(4))
    mstar = max_candidate_set(graph, template, engine)
    label_matching = sum(
        1 for v in graph.vertices() if graph.label(v) in template.label_set()
    )
    print(f"\n[2] Maximum candidate set: {label_matching} label-matching "
          f"vertices -> {mstar.num_active_vertices} survive M* "
          f"({engine.stats.total_messages} messages)")

    # Stage 3 — LCC for the full template.
    root = protos.at(0)[0]
    state = mstar.for_prototype_search(root)
    engine2 = Engine(pgraph, MessageStats(4))
    iterations = local_constraint_checking(state, root.graph, engine2)
    print(f"\n[3] Local constraint checking ({iterations} iterations): "
          f"{state.num_active_vertices} vertices, "
          f"{state.num_active_edges} edges remain")

    # Stage 4 — one cycle constraint, then the full walk.
    constraint_set = generate_constraints(root.graph, graph.label_counts())
    cycle = next(c for c in constraint_set.non_local if c.kind == "cycle")
    engine3 = Engine(pgraph, MessageStats(4))
    outcome = non_local_constraint_checking(state, cycle, engine3)
    print(f"\n[4] Cycle constraint {cycle.walk}: checked "
          f"{len(outcome.checked)} initiators, eliminated "
          f"{outcome.eliminated_roles} roles "
          f"({engine3.stats.total_messages} token messages)")

    full_walk = constraint_set.full_walk()
    engine4 = Engine(pgraph, MessageStats(4))
    verdict = non_local_constraint_checking(state, full_walk, engine4)
    print(f"\n[5] Full-walk verification (walk length {full_walk.length}): "
          f"{verdict.completions} completed tokens = exact match mappings; "
          f"state reduced to {state.num_active_vertices} vertices")

    # Stage 6 — the packaged pipeline agrees, and brute force agrees.
    result = run_pipeline(
        graph, template, 1, PipelineOptions(num_ranks=4, count_matches=True)
    )
    assert result.outcome_for(root.id).solution_vertices == set(
        state.active_vertices()
    )
    report = audit_result(graph, result)
    rows = [
        [a.name, len(a.true_vertices), f"{a.vertex_precision:.0%}",
         f"{a.vertex_recall:.0%}", a.exact]
        for a in report.prototypes
    ]
    print("\n[6] run_pipeline + brute-force audit:")
    print(format_table(
        ["prototype", "true vertices", "precision", "recall", "exact"], rows
    ))
    print(f"\nHand-driven stages and the packaged pipeline agree; "
          f"audit exact: {report.exact}")


if __name__ == "__main__":
    main()
