#!/usr/bin/env python
"""Bulk vertex labeling for machine-learning feature extraction (S4, §1).

The paper's primary target scenario: rather than enumerating matches, label
every vertex of the background graph with the prototype(s) it participates
in.  The per-vertex binary vectors (Def. 3) become discrete topological
features for a downstream ML pipeline — here we materialize them as a
dense numpy feature matrix and show a toy downstream use (clustering
vertices by their prototype-membership signature).

Run:  python examples/ml_bulk_labeling.py
"""

import numpy as np

from repro import PipelineOptions, run_pipeline
from repro.analysis import format_count, format_seconds
from repro.core.patterns import wdc1_template
from repro.graph.generators import plant_pattern, webgraph


def feature_matrix(result, vertices):
    """Dense |V| x |P_k| binary matrix of approximate match vectors."""
    proto_ids = sorted(p.id for p in result.prototype_set)
    index = {pid: col for col, pid in enumerate(proto_ids)}
    matrix = np.zeros((len(vertices), len(proto_ids)), dtype=np.int8)
    for row, vertex in enumerate(vertices):
        for pid in result.match_vector(vertex):
            matrix[row, index[pid]] = 1
    return matrix, proto_ids


def main() -> None:
    graph = webgraph(num_vertices=4000, num_labels=20, seed=3)
    template = wdc1_template()
    labels = [template.label(v) for v in sorted(template.graph.vertices())]
    plant_pattern(graph, template.edges(), labels, copies=6, seed=2)

    print(f"Background graph: {graph.num_vertices} vertices, "
          f"{graph.num_edges} edges")
    print(f"Template: {template.name}, searched at k=2")

    result = run_pipeline(
        graph, template, k=2, options=PipelineOptions(num_ranks=4)
    )

    print(f"Prototypes: {len(result.prototype_set)} "
          f"({result.prototype_set.level_counts()})")
    print(f"Vertex/prototype labels generated: "
          f"{format_count(result.total_labels_generated())} over "
          f"{len(result.match_vectors)} vertices in "
          f"{format_seconds(result.total_simulated_seconds)} (simulated)")

    vertices = sorted(graph.vertices())
    matrix, proto_ids = feature_matrix(result, vertices)
    print(f"\nFeature matrix: {matrix.shape[0]} x {matrix.shape[1]} "
          f"(density {matrix.mean():.4%})")

    # Toy downstream use: group vertices by identical feature signatures.
    signatures = {}
    for row, vertex in enumerate(vertices):
        key = tuple(matrix[row])
        signatures.setdefault(key, []).append(vertex)
    nontrivial = {k: v for k, v in signatures.items() if any(k)}
    print(f"Distinct non-zero membership signatures: {len(nontrivial)}")
    for key, members in sorted(
        nontrivial.items(), key=lambda kv: -len(kv[1])
    )[:5]:
        active = [proto_ids[i] for i, bit in enumerate(key) if bit]
        print(f"  prototypes {active}: {len(members)} vertices")

    # Per-distance aggregate features: "matches something within k edits".
    for distance in range(result.k + 1):
        ids = {p.id for p in result.prototype_set.at(distance)}
        covered = sum(
            1 for v in result.match_vectors if result.match_vector(v) & ids
        )
        print(f"Vertices matching some k={distance} prototype: {covered}")


if __name__ == "__main__":
    main()
