#!/usr/bin/env python
"""Social network analysis: the RDT-1 adversarial poster-commenter query.

Reproduces the §5.5 use case: in a Reddit-like metadata graph, find users
with an adversarial poster-commenter relationship — an author whose
up-voted post attracts a down-voted comment and vice versa, with the posts
under *different* subreddits.  The author edges are optional ("a valid
match can be missing an author-post or an author-comment edge"), so the
query runs at edit-distance 1 over 5 prototypes, distinguishing *precise*
matches (the full template) from relaxed ones.

Run:  python examples/reddit_moderation.py
"""

from repro import PipelineOptions, run_pipeline
from repro.analysis import format_seconds, format_table
from repro.core.patterns import rdt1_template
from repro.graph.generators import reddit_graph
from repro.graph.generators.reddit import AUTHOR, LABEL_NAMES


def main() -> None:
    graph = reddit_graph(
        num_authors=600,
        num_subreddits=25,
        posts_per_author=1.5,
        comments_per_post=3.0,
        planted_rdt1=8,
        seed=20,
    )
    print(f"Reddit-like graph: {graph.num_vertices} vertices, "
          f"{graph.num_edges} edges")
    counts = graph.label_counts()
    print("  " + ", ".join(
        f"{LABEL_NAMES[label]}: {count}" for label, count in sorted(counts.items())
    ))

    template = rdt1_template()
    print(f"\nQuery: {template.name} — {template.num_vertices} vertices, "
          f"{len(template.mandatory_edges)} mandatory + "
          f"{len(template.optional_edges())} optional edges")

    result = run_pipeline(
        graph, template, k=1, options=PipelineOptions(num_ranks=4, count_matches=True)
    )

    root = result.prototype_set.at(0)[0]
    precise = result.outcome_for(root.id)
    total_mappings = result.total_match_mappings()
    print(f"\nPrototypes: {len(result.prototype_set)} "
          f"({result.prototype_set.level_counts()})")
    print(f"Total match mappings: {total_mappings} "
          f"(including {precise.match_mappings} precise)")

    rows = [
        [o.name, o.distance, len(o.solution_vertices), o.match_mappings]
        for o in result.outcomes()
    ]
    print(format_table(["prototype", "k", "matched vertices", "mappings"], rows))

    # Flag the adversarial authors (vertex labels AUTHOR inside any match).
    flagged = sorted(
        v for v in result.matched_vertices() if graph.label(v) == AUTHOR
    )
    precise_authors = sorted(
        v for v in precise.solution_vertices if graph.label(v) == AUTHOR
    )
    print(f"\nFlagged authors: {len(flagged)} "
          f"({len(precise_authors)} with the complete adversarial structure)")
    print(f"Time-to-solution (simulated): "
          f"{format_seconds(result.total_simulated_seconds)}")


if __name__ == "__main__":
    main()
