#!/usr/bin/env python
"""Information mining: the IMDB-1 shared-cast query (§5.5).

In an IMDb-like bipartite graph, find (actress, actor, director, movie,
movie) tuples where both movies share a genre and at least one individual
repeats a role across the two movies.  The "second movie" edges of each
person are optional, so the search runs at edit-distance 2 over 7
prototypes.

Run:  python examples/imdb_mining.py
"""

from repro import PipelineOptions, run_pipeline
from repro.analysis import format_seconds, format_table
from repro.core.patterns import imdb1_template
from repro.graph.generators import imdb_graph
from repro.graph.generators.imdb import LABEL_NAMES


def main() -> None:
    graph = imdb_graph(
        num_movies=500,
        num_genres=15,
        num_actresses=400,
        num_actors=400,
        num_directors=120,
        cast_size=5,
        planted_imdb1=5,
        seed=31,
    )
    print(f"IMDb-like graph: {graph.num_vertices} vertices, "
          f"{graph.num_edges} edges (bipartite)")
    counts = graph.label_counts()
    print("  " + ", ".join(
        f"{LABEL_NAMES[label]}: {count}" for label, count in sorted(counts.items())
    ))

    template = imdb1_template()
    print(f"\nQuery: {template.name} — mandatory first-movie roles, optional "
          f"second-movie roles, shared genre")

    result = run_pipeline(
        graph,
        template,
        k=2,
        options=PipelineOptions(num_ranks=4, count_matches=True),
    )

    root = result.prototype_set.at(0)[0]
    print(f"\nPrototypes: {len(result.prototype_set)} "
          f"({result.prototype_set.level_counts()})")
    print(f"Total mappings: {result.total_match_mappings()} "
          f"(including {result.outcome_for(root.id).match_mappings} precise — "
          f"all three individuals repeat)")

    rows = []
    for outcome in result.outcomes():
        removed = outcome.prototype.removed_edges()
        rows.append([
            outcome.name,
            outcome.distance,
            len(outcome.solution_vertices),
            outcome.match_mappings,
            ", ".join(f"{u}-{v}" for u, v in removed) or "(none)",
        ])
    print(format_table(
        ["prototype", "k", "vertices", "mappings", "edges removed"], rows
    ))
    print(f"\nTime-to-solution (simulated): "
          f"{format_seconds(result.total_simulated_seconds)}")


if __name__ == "__main__":
    main()
