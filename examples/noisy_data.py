#!/usr/bin/env python
"""Scenario S2 — matching under data-acquisition noise.

The paper's second motivating scenario: "the acquired data can be noisy,
leading to a background graph that is different from the ground truth ...
approximate matching is used to highlight subgraphs that may be of
interest and have to be further inspected" (e.g., genomics pipelines).

This example plants exact pattern instances into a graph, then simulates
acquisition noise by deleting a fraction of edges.  Exact matching (k=0)
misses every instance that lost an edge; approximate matching at k=1 and
k=2 recovers them — with full precision (every reported vertex really sits
in a ≤k-edit match of the template).

Run:  python examples/noisy_data.py
"""

import numpy as np

from repro import PatternTemplate, PipelineOptions, run_pipeline
from repro.analysis import format_table
from repro.graph.generators import planted_graph

PATTERN_EDGES = [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 0)]
PATTERN_LABELS = [1, 2, 3, 4, 5]
COPIES = 12


def main() -> None:
    template = PatternTemplate.from_edges(
        PATTERN_EDGES,
        {i: l for i, l in enumerate(PATTERN_LABELS)},
        name="ground-truth",
    )
    graph = planted_graph(
        300, 700, PATTERN_EDGES, PATTERN_LABELS,
        copies=COPIES, num_labels=8, seed=41,
    )
    # The planted instances occupy the appended vertex ids.
    instance_vertices = [
        list(range(300 + i * 5, 300 + (i + 1) * 5)) for i in range(COPIES)
    ]

    # Simulate acquisition noise: drop ~12% of planted-instance edges.
    rng = np.random.default_rng(7)
    dropped = 0
    for members in instance_vertices:
        for u, v in PATTERN_EDGES:
            if rng.random() < 0.12 and graph.has_edge(members[u], members[v]):
                graph.remove_edge(members[u], members[v])
                dropped += 1
    print(f"Planted {COPIES} instances ({len(PATTERN_EDGES)} edges each); "
          f"noise deleted {dropped} edges")

    rows = []
    for k in (0, 1, 2):
        result = run_pipeline(
            graph, template, k, PipelineOptions(num_ranks=4)
        )
        matched = result.matched_vertices()
        recovered = sum(
            1 for members in instance_vertices
            if all(v in matched for v in members)
        )
        rows.append([
            k,
            len(result.prototype_set),
            recovered,
            f"{recovered / COPIES:.0%}",
            len(matched),
        ])
    print()
    print(format_table(
        ["k", "prototypes", "instances recovered", "recall of planted",
         "matched vertices"],
        rows,
    ))
    print("\nEvery reported vertex is guaranteed to lie in an exact match of "
          "some <=k-edit prototype (100% precision) — the noisy instances "
          "surface for inspection instead of vanishing.")


if __name__ == "__main__":
    main()
