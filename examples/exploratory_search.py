#!/usr/bin/env python
"""Exploratory (top-down) search: relax a 6-Clique until matches appear.

Reproduces the §5.5 exploratory scenario: the user starts from the WDC-4
6-Clique with domain labels and no idea whether it exists; the system
searches exact matches first and relaxes the template one edit at a time
until the first match(es) are discovered, reporting how many prototypes
were sifted through at each level.

Run:  python examples/exploratory_search.py
"""

from repro import PipelineOptions, exploratory_search
from repro.analysis import format_seconds, format_table
from repro.core import stopping_distance
from repro.core.patterns import wdc4_template
from repro.graph.generators import plant_pattern, webgraph


def main() -> None:
    graph = webgraph(num_vertices=2500, num_labels=20, seed=13)
    template = wdc4_template()

    # Plant one *relaxed* structure: the 6-clique minus three edges, so the
    # search must relax to k=3 before anything matches.
    relaxed_edges = [e for e in template.edges() if e not in [(0, 1), (2, 3), (4, 5)]]
    labels = [template.label(v) for v in sorted(template.graph.vertices())]
    plant_pattern(graph, relaxed_edges, labels, copies=2, seed=3)

    print(f"Background graph: {graph.num_vertices} vertices, "
          f"{graph.num_edges} edges")
    print(f"Template: {template.name} (6-Clique, "
          f"{template.max_meaningful_distance()} max edit-distance, "
          f"1,941 prototypes within k=4)")

    result = exploratory_search(
        graph,
        template,
        max_k=4,
        options=PipelineOptions(num_ranks=4),
    )

    stop = stopping_distance(result)
    rows = []
    searched = 0
    for level in result.levels:
        searched += level.num_prototypes
        rows.append([
            level.distance,
            level.num_prototypes,
            level.union_vertices,
            format_seconds(level.search_seconds),
        ])
    print("\nRelaxation trace:")
    print(format_table(["k", "prototypes searched", "matched vertices", "time"], rows))
    print(f"\nFirst matches at edit-distance k={stop}; "
          f"{searched} prototypes sifted in "
          f"{format_seconds(result.total_simulated_seconds)} (simulated)")

    matching = result.matched_vertices()
    print(f"Matching vertices: {sorted(matching)[:12]}"
          f"{' ...' if len(matching) > 12 else ''}")


if __name__ == "__main__":
    main()
