#!/usr/bin/env python
"""Quickstart: approximate pattern matching in five minutes.

Builds a small WDC-like labeled webgraph, defines a search template with
domain-style labels, and runs the approximate matching pipeline at
edit-distance k=1 — printing the per-vertex approximate match vectors
(Def. 3 of the paper), the per-prototype exact solution subgraph sizes,
and the run's message statistics.

Run:  python examples/quickstart.py
"""

from repro import PatternTemplate, PipelineOptions, run_pipeline
from repro.analysis import format_count, format_seconds, format_table
from repro.graph.generators import plant_pattern, webgraph
from repro.graph.generators.webgraph import domain_label


def main() -> None:
    # 1. A background graph: scale-free, Zipf-distributed domain labels.
    graph = webgraph(num_vertices=3000, num_labels=20, seed=7)
    print(f"Background graph: {graph.num_vertices} vertices, "
          f"{graph.num_edges} edges, {len(graph.label_set())} labels")

    # 2. A search template: an `org` page linking a triangle of
    #    net/edu pages, with a gov page attached.
    edges = [(0, 1), (1, 2), (2, 0), (2, 3)]
    labels = {
        0: domain_label("org"),
        1: domain_label("net"),
        2: domain_label("edu"),
        3: domain_label("gov"),
    }
    template = PatternTemplate.from_edges(edges, labels, name="quickstart")

    # Plant a few exact instances so there is something to find.
    plant_pattern(graph, edges, [labels[i] for i in range(4)], copies=3, seed=1)

    # 3. Run the pipeline: all exact matches of every prototype within
    #    edit-distance 1, with 100% precision and recall.
    options = PipelineOptions(num_ranks=4, count_matches=True)
    result = run_pipeline(graph, template, k=1, options=options)

    # 4. Inspect the results.
    print(f"\nPrototypes searched: {len(result.prototype_set)} "
          f"(counts by distance: {result.prototype_set.level_counts()})")
    print(f"Maximum candidate set: {result.candidate_set_vertices} vertices")
    print(f"Matching vertices: {len(result.match_vectors)}; "
          f"labels generated: {result.total_labels_generated()}")

    rows = []
    for outcome in result.outcomes():
        rows.append([
            outcome.name,
            outcome.distance,
            len(outcome.solution_vertices),
            len(outcome.solution_edges),
            outcome.match_mappings,
        ])
    print("\nPer-prototype solution subgraphs:")
    print(format_table(["prototype", "k", "vertices", "edges", "mappings"], rows))

    # A vertex's approximate match vector: which prototypes it belongs to.
    some_vertex = next(iter(result.match_vectors))
    print(f"\nMatch vector of vertex {some_vertex}: "
          f"{sorted(result.match_vector(some_vertex))}")

    summary = result.message_summary
    print(f"\nMessages: {format_count(summary['total_messages'])} total, "
          f"{summary['remote_fraction']:.0%} remote")
    print(f"Simulated parallel time: {format_seconds(result.total_simulated_seconds)} "
          f"(wall: {format_seconds(result.total_wall_seconds)})")


if __name__ == "__main__":
    main()
