#!/usr/bin/env python
"""Wildcard exploratory queries: "some entity of unknown category".

§3.1 notes that wildcard labels "fit our pipeline's design and require
small updates" — this example uses that extension: an analyst knows an
``org`` page links an ``edu`` page and both link a *third* page whose
domain category is unknown.  The wildcard is compiled into one fully
labeled instantiation per feasible background label; each runs through the
exact pipeline, so precision/recall guarantees carry over unchanged, and
the merged result reports which categories actually close the triangle.

Run:  python examples/wildcard_search.py
"""

from repro import PatternTemplate, PipelineOptions
from repro.analysis import format_seconds, format_table
from repro.core import WILDCARD, run_wildcard_pipeline
from repro.graph.generators import plant_pattern, webgraph
from repro.graph.generators.webgraph import DOMAIN_LABELS, domain_label


def main() -> None:
    graph = webgraph(num_vertices=2500, num_labels=12, seed=23)
    # Plant closing categories: a couple of 'gov' and one 'net' apex.
    plant_pattern(graph, [(0, 1), (1, 2), (2, 0)],
                  [domain_label("org"), domain_label("edu"), domain_label("gov")],
                  copies=2, seed=5)
    plant_pattern(graph, [(0, 1), (1, 2), (2, 0)],
                  [domain_label("org"), domain_label("edu"), domain_label("net")],
                  copies=1, seed=6)

    template = PatternTemplate.from_edges(
        [(0, 1), (1, 2), (2, 0)],
        labels={0: domain_label("org"), 1: domain_label("edu"), 2: WILDCARD},
        name="org-edu-?",
    )
    print(f"Background graph: {graph.num_vertices} vertices, "
          f"{graph.num_edges} edges")
    print(f"Query: {template.name} — triangle with an unknown third category")

    result = run_wildcard_pipeline(
        graph, template, k=1,
        options=PipelineOptions(num_ranks=4, count_matches=True),
    )

    rows = []
    for name, instantiation_result in sorted(result.per_instantiation.items()):
        mappings = instantiation_result.total_match_mappings()
        label = int(name.split("[")[1].rstrip("]"))
        domain = DOMAIN_LABELS[label] if label < len(DOMAIN_LABELS) else str(label)
        rows.append([
            f".{domain}",
            len(instantiation_result.match_vectors),
            mappings,
        ])
    print(f"\nInstantiations searched: {len(result.per_instantiation)}")
    print(format_table(["wildcard =", "matched vertices", "mappings"], rows))

    closing = result.instantiations_with_matches()
    print(f"\nCategories that close the org-edu triangle (within 1 edit): "
          f"{len(closing)}")
    print(f"Total matched vertices: {len(result.matched_vertices())}; "
          f"time {format_seconds(result.total_simulated_seconds)} (simulated)")


if __name__ == "__main__":
    main()
