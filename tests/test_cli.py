"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, load_template, main
from repro.graph import io as graph_io
from repro.graph.generators import planted_graph


@pytest.fixture()
def graph_files(tmp_path):
    edges = [(0, 1), (1, 2), (2, 0)]
    labels = [1, 2, 3]
    graph = planted_graph(30, 60, edges, labels, copies=2, num_labels=4, seed=3)
    graph_path = tmp_path / "graph.edges"
    labels_path = tmp_path / "graph.labels"
    graph_io.write_edge_list(graph, graph_path)
    graph_io.write_labels(graph, labels_path)
    template_path = tmp_path / "template.json"
    template_path.write_text(json.dumps({
        "edges": [[0, 1], [1, 2], [2, 0]],
        "labels": {"0": 1, "1": 2, "2": 3},
        "name": "tri",
    }))
    return graph_path, labels_path, template_path


class TestTemplateLoading:
    def test_load_template(self, graph_files):
        _graph, _labels, template_path = graph_files
        template = load_template(str(template_path))
        assert template.name == "tri"
        assert template.num_edges == 3

    def test_mandatory_edges(self, tmp_path):
        path = tmp_path / "t.json"
        path.write_text(json.dumps({
            "edges": [[0, 1], [1, 2]],
            "labels": {"0": 1, "1": 2, "2": 3},
            "mandatory_edges": [[0, 1]],
        }))
        template = load_template(str(path))
        assert (0, 1) in template.mandatory_edges


class TestSearchCommand:
    def test_search_prints_and_writes(self, graph_files, tmp_path, capsys):
        graph_path, labels_path, template_path = graph_files
        output = tmp_path / "out.json"
        code = main([
            "search", str(graph_path), str(template_path),
            "--labels", str(labels_path), "-k", "1", "--count",
            "--output", str(output), "--ranks", "2",
        ])
        assert code == 0
        captured = capsys.readouterr().out
        assert "prototypes: 4" in captured
        assert "match mappings:" in captured
        document = json.loads(output.read_text())
        assert document["template"] == "tri"
        assert document["match_vectors"]

    def test_missing_file(self, graph_files, capsys):
        _g, _l, template_path = graph_files
        code = main(["search", "/does/not/exist", str(template_path)])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_json_output_is_machine_readable(self, graph_files, capsys):
        graph_path, labels_path, template_path = graph_files
        code = main([
            "search", str(graph_path), str(template_path),
            "--labels", str(labels_path), "-k", "1", "--ranks", "2",
            "--json",
        ])
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["template"] == "tri"
        assert document["prototypes"] == 4
        assert document["candidate_set"]["vertices"] > 0
        assert {lvl["distance"] for lvl in document["levels"]} == {0, 1}
        assert "totals" in document and "messages" in document

    def test_trace_flag_writes_parseable_trace(
        self, graph_files, tmp_path, capsys
    ):
        from repro.analysis.tracereport import load_trace

        graph_path, labels_path, template_path = graph_files
        trace_path = tmp_path / "run.json"
        code = main([
            "search", str(graph_path), str(template_path),
            "--labels", str(labels_path), "-k", "1", "--ranks", "2",
            "--trace", str(trace_path), "--json",
        ])
        assert code == 0
        captured = capsys.readouterr()
        # the trace notice goes to stderr so --json stdout stays parseable
        json.loads(captured.out)
        assert str(trace_path) in captured.err
        records = load_trace(trace_path)
        names = {r["name"] for r in records}
        assert {"pipeline", "level", "prototype", "lcc"} <= names


class TestTraceCommand:
    def _traced_search(self, graph_files, trace_path):
        graph_path, labels_path, template_path = graph_files
        code = main([
            "search", str(graph_path), str(template_path),
            "--labels", str(labels_path), "-k", "1", "--ranks", "2",
            "--trace", str(trace_path),
        ])
        assert code == 0

    def test_trace_report(self, graph_files, tmp_path, capsys):
        trace_path = tmp_path / "run.json"
        self._traced_search(graph_files, trace_path)
        capsys.readouterr()
        code = main(["trace", str(trace_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "== span tree" in out
        assert "== per-phase breakdown ==" in out
        assert "== per-level breakdown ==" in out
        assert "pipeline" in out

    def test_trace_report_jsonl(self, graph_files, tmp_path, capsys):
        trace_path = tmp_path / "run.jsonl"
        self._traced_search(graph_files, trace_path)
        capsys.readouterr()
        code = main(["trace", str(trace_path), "--depth", "2"])
        assert code == 0
        assert "== per-phase breakdown ==" in capsys.readouterr().out

    def test_trace_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{\"not\": \"a trace\"}")
        code = main(["trace", str(bad)])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestMotifsCommand:
    def test_motif_census(self, graph_files, capsys):
        graph_path, _labels, _template = graph_files
        code = main(["motifs", str(graph_path), "--size", "3", "--ranks", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "motif" in out
        assert "induced" in out


class TestGenerateCommand:
    @pytest.mark.parametrize("dataset", ["webgraph", "reddit", "imdb"])
    def test_generate_round_trips(self, dataset, tmp_path, capsys):
        output = tmp_path / f"{dataset}.edges"
        code = main([
            "generate", dataset, str(output), "--size", "200", "--seed", "1"
        ])
        assert code == 0
        graph = graph_io.read_edge_list(output, str(output) + ".labels")
        assert graph.num_vertices > 0
        assert graph.num_edges > 0


class TestDatasetsCommand:
    def test_datasets_table(self, capsys):
        code = main(["datasets"])
        assert code == 0
        out = capsys.readouterr().out
        assert "WDC-like" in out
        assert "livejournal" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestExploreCommand:
    def test_explore_reports_stop_level(self, graph_files, capsys):
        graph_path, labels_path, template_path = graph_files
        code = main([
            "explore", str(graph_path), str(template_path),
            "--labels", str(labels_path), "--ranks", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "first matches at edit-distance k=0" in out

    def test_explore_no_match(self, tmp_path, graph_files, capsys):
        graph_path, labels_path, template_path = graph_files
        # A template whose labels do not exist in the graph.
        impossible = tmp_path / "impossible.json"
        impossible.write_text(json.dumps({
            "edges": [[0, 1], [1, 2], [2, 0]],
            "labels": {"0": 90, "1": 91, "2": 92},
        }))
        code = main([
            "explore", str(graph_path), str(impossible),
            "--labels", str(labels_path), "--ranks", "2",
        ])
        assert code == 0
        assert "no matches" in capsys.readouterr().out

    def test_explore_trace(self, graph_files, tmp_path, capsys):
        from repro.analysis.tracereport import load_trace

        graph_path, labels_path, template_path = graph_files
        trace_path = tmp_path / "explore.json"
        code = main([
            "explore", str(graph_path), str(template_path),
            "--labels", str(labels_path), "--ranks", "2",
            "--trace", str(trace_path),
        ])
        assert code == 0
        records = load_trace(trace_path)
        root = next(r for r in records if r["parent_id"] is None)
        assert root["name"] == "pipeline"
        assert root["attrs"]["mode"] == "exploratory"


class TestLintCommand:
    def _seeded_tree(self, tmp_path):
        target = tmp_path / "helpers.py"
        target.write_text(
            "def f(options):\n"
            "    if options.reload_ranks:\n"
            "        return 1\n"
            "    return 0\n"
        )
        return target

    def test_lint_reports_findings(self, tmp_path, capsys):
        self._seeded_tree(tmp_path)
        code = main(["lint", str(tmp_path)])
        assert code == 1
        out = capsys.readouterr().out
        assert "R1" in out
        assert "helpers.py" in out

    def test_lint_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "helpers.py").write_text(
            "def f(options):\n"
            "    if options.reload_ranks is not None:\n"
            "        return 1\n"
            "    return 0\n"
        )
        code = main(["lint", str(tmp_path)])
        assert code == 0
        assert "0 new finding(s)" in capsys.readouterr().out

    def test_lint_json_and_rule_filter(self, tmp_path, capsys):
        self._seeded_tree(tmp_path)
        code = main(["lint", str(tmp_path), "--json", "--rule", "R1"])
        assert code == 1
        document = json.loads(capsys.readouterr().out)
        assert document["rules_run"] == ["R1"]
        assert document["summary"]["new"] == 1

    def test_lint_baseline_flow(self, tmp_path, capsys):
        self._seeded_tree(tmp_path)
        base = tmp_path / "base.json"
        code = main([
            "lint", str(tmp_path), "--baseline", str(base),
            "--write-baseline",
        ])
        assert code == 0
        capsys.readouterr()
        code = main(["lint", str(tmp_path), "--baseline", str(base)])
        assert code == 0
        assert "baselined" in capsys.readouterr().out


class TestAuditCommand:
    def test_audit_passes_on_exact_run(self, graph_files, capsys):
        graph_path, labels_path, template_path = graph_files
        code = main([
            "audit", str(graph_path), str(template_path),
            "--labels", str(labels_path), "-k", "1", "--ranks", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "overall exact: True" in out


class TestMetricsCommand:
    def _write_snapshot(self, graph_files, tmp_path, capsys):
        graph_path, labels_path, template_path = graph_files
        metrics_path = tmp_path / "metrics.json"
        code = main([
            "search", str(graph_path), str(template_path),
            "--labels", str(labels_path), "-k", "1", "--ranks", "2",
            "--metrics-out", str(metrics_path),
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert f"metrics snapshot written to {metrics_path}" in captured.err
        return metrics_path

    def test_metrics_out_then_report(self, graph_files, tmp_path, capsys):
        metrics_path = self._write_snapshot(graph_files, tmp_path, capsys)
        code = main(["metrics", str(metrics_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "== derived ==" in out
        assert "== counters ==" in out
        assert "fixpoint.rounds_dense" in out

    def test_metrics_json_includes_derived_block(
        self, graph_files, tmp_path, capsys
    ):
        metrics_path = self._write_snapshot(graph_files, tmp_path, capsys)
        code = main(["metrics", str(metrics_path), "--json"])
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert "derived" in document
        assert document["counters"]["fixpoint.rounds_dense"] >= 1

    def test_metrics_out_prom_conversion(self, graph_files, tmp_path, capsys):
        metrics_path = self._write_snapshot(graph_files, tmp_path, capsys)
        prom_path = tmp_path / "metrics.prom"
        code = main(["metrics", str(metrics_path), "--out", str(prom_path)])
        assert code == 0
        assert "# TYPE repro_fixpoint_rounds_dense counter" in prom_path.read_text()

    def test_search_json_embeds_metrics(self, graph_files, capsys):
        graph_path, labels_path, template_path = graph_files
        code = main([
            "search", str(graph_path), str(template_path),
            "--labels", str(labels_path), "--ranks", "2", "--json",
        ])
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert "metrics" in document
        assert document["metrics"]["counters"]["fixpoint.rounds_dense"] >= 1

    def test_metrics_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        code = main(["metrics", str(bad)])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestBatchScheduleOutput:
    def _template_files(self, tmp_path):
        paths = []
        for name, rotate in (("tri-a", 0), ("tri-b", 1)):
            path = tmp_path / f"{name}.json"
            labels = [1, 2, 3]
            labels = labels[rotate:] + labels[:rotate]
            path.write_text(json.dumps({
                "edges": [[0, 1], [1, 2], [2, 0]],
                "labels": {str(i): l for i, l in enumerate(labels)},
                "name": name,
            }))
            paths.append(path)
        return paths

    def test_batch_json_reports_schedule_costs(
        self, graph_files, tmp_path, capsys
    ):
        graph_path, labels_path, _ = graph_files
        templates = self._template_files(tmp_path)
        code = main([
            "batch", str(graph_path), *map(str, templates),
            "--labels", str(labels_path), "--ranks", "2", "--count",
        ] + ["--json"])
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        entries = document["schedule_costs"]
        assert [e["name"] for e in entries] == document["schedule"]
        assert all(e["cost_estimate"] > 0 for e in entries)
        assert all(e["wall_seconds"] >= 0 for e in entries)

    def test_batch_human_output_prints_schedule_table(
        self, graph_files, tmp_path, capsys
    ):
        graph_path, labels_path, _ = graph_files
        templates = self._template_files(tmp_path)
        code = main([
            "batch", str(graph_path), *map(str, templates),
            "--labels", str(labels_path), "--ranks", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "schedule (estimate vs measured):" in out
        assert "cost estimate" in out
