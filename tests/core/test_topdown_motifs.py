"""Tests for exploratory (top-down) search and motif counting."""

import pytest

from repro.core import (
    PatternTemplate,
    PipelineOptions,
    count_motifs,
    exploratory_search,
    motif_prototypes,
    motif_template,
    run_pipeline,
    stopping_distance,
)
from repro.graph import from_edges
from repro.graph.generators import gnm_graph, planted_graph


class TestExploratorySearch:
    def template(self):
        # Diamond (4-cycle + chord): max meaningful distance 2.
        return PatternTemplate.from_edges(
            [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)],
            labels={0: 1, 1: 2, 2: 3, 3: 4},
            name="diamond",
        )

    def test_stops_at_first_matching_level(self):
        t = self.template()
        # Plant only a k=1 prototype (the plain 4-cycle, chord missing).
        g = planted_graph(
            80, 160, [(0, 1), (1, 2), (2, 3), (3, 0)], [1, 2, 3, 4],
            copies=2, num_labels=6, seed=7,
        )
        result = exploratory_search(g, t, options=PipelineOptions(num_ranks=2))
        stop = stopping_distance(result)
        assert stop is not None and stop >= 1
        assert [lvl.distance for lvl in result.levels] == list(range(stop + 1))

    def test_stops_immediately_on_exact_match(self):
        t = self.template()
        g = planted_graph(
            80, 160, t.edges(), [1, 2, 3, 4], copies=2, num_labels=6, seed=8
        )
        result = exploratory_search(g, t, options=PipelineOptions(num_ranks=2))
        assert stopping_distance(result) == 0
        assert len(result.levels) == 1

    def test_no_match_searches_all_levels(self):
        t = self.template()
        g = from_edges([(0, 1)], labels={0: 1, 1: 2})
        result = exploratory_search(g, t, options=PipelineOptions(num_ranks=2))
        assert stopping_distance(result) is None
        assert len(result.levels) == t.max_meaningful_distance() + 1

    def test_agrees_with_bottom_up_at_stop_level(self):
        t = self.template()
        g = planted_graph(
            80, 160, [(0, 1), (1, 2), (2, 3), (3, 0)], [1, 2, 3, 4],
            copies=2, num_labels=6, seed=9,
        )
        top = exploratory_search(g, t, options=PipelineOptions(num_ranks=2))
        stop = stopping_distance(top)
        bottom = run_pipeline(g, t, stop, PipelineOptions(num_ranks=2))
        for proto in top.prototype_set.at(stop):
            assert (
                top.outcome_for(proto.id).solution_vertices
                == bottom.outcome_for(proto.id).solution_vertices
            )

    def test_max_k_limits_relaxation(self):
        t = self.template()
        g = from_edges([(0, 1)], labels={0: 1, 1: 2})
        result = exploratory_search(g, t, max_k=1, options=PipelineOptions(num_ranks=2))
        assert len(result.levels) == 2

    def test_custom_stop_condition(self):
        t = self.template()
        g = from_edges([(0, 1)], labels={0: 1, 1: 2})
        result = exploratory_search(
            g, t, stop_condition=lambda level: True,
            options=PipelineOptions(num_ranks=2),
        )
        assert len(result.levels) == 1


class TestMotifs:
    def test_motif_template_unlabeled(self):
        t = motif_template(4)
        assert t.label_set() == {0}
        assert t.num_edges == 6

    def test_motif_prototype_counts(self):
        assert len(motif_prototypes(3)) == 2
        assert len(motif_prototypes(4)) == 6
        assert len(motif_prototypes(5)) == 21  # connected 5-vertex graphs

    def test_triangle_and_path_counts(self):
        # One triangle with a pendant: 1 triangle, 2 induced P3.
        g = from_edges([(0, 1), (1, 2), (2, 0), (2, 3)], labels={v: 0 for v in range(4)})
        counts = count_motifs(g, 3, PipelineOptions(num_ranks=2))
        by_edges = {p.num_edges: counts.induced[p.id] for p in counts.prototypes}
        assert by_edges[3] == 1  # the triangle {0,1,2}
        assert by_edges[2] == 2  # induced paths {0,2,3} and {1,2,3}

    def test_agreement_with_esu_baseline(self):
        from repro.baselines import arabesque_count_motifs
        from repro.graph.isomorphism import canonical_form

        g = gnm_graph(40, 90, num_labels=1, seed=13)
        counts = count_motifs(g, 4, PipelineOptions(num_ranks=2))
        reference = arabesque_count_motifs(g, 4)
        ours = {canonical_form(p.graph): counts.induced[p.id] for p in counts.prototypes}
        for key, value in reference.counts.items():
            assert ours[key] == value
        assert counts.total_induced() == reference.total_embeddings()

    def test_noninduced_at_least_induced(self):
        g = gnm_graph(30, 60, num_labels=1, seed=14)
        counts = count_motifs(g, 3, PipelineOptions(num_ranks=2))
        for proto in counts.prototypes:
            assert counts.noninduced[proto.id] >= counts.induced[proto.id]

    def test_by_name(self):
        g = gnm_graph(20, 30, num_labels=1, seed=15)
        counts = count_motifs(g, 3, PipelineOptions(num_ranks=2))
        named = counts.by_name()
        assert set(named) == {p.name for p in counts.prototypes}

    def test_spanning_subgraph_count(self):
        from repro.core.motifs import spanning_subgraph_count

        k3 = motif_template(3).graph
        p3 = motif_prototypes(3).at(1)[0].graph
        assert spanning_subgraph_count(p3, k3) == 3  # 3 paths span a triangle
        assert spanning_subgraph_count(k3, p3) == 0  # denser cannot fit
