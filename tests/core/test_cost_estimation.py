"""Tests for the constrained-walk cost/likelihood estimator."""

import pytest

from repro.core import (
    GraphStatistics,
    PipelineOptions,
    estimate_success_probability,
    estimate_walk_cost,
    order_constraints_by_cost,
    pruning_efficiency,
    run_pipeline,
)
from repro.core.constraints import (
    CYCLE_KIND,
    FULL_WALK_KIND,
    NonLocalConstraint,
)
from repro.core.template import PatternTemplate
from repro.graph import from_edges
from repro.graph.generators import planted_graph


def stats_of(edges, labels):
    return GraphStatistics.from_graph(
        from_edges(edges, labels={i: l for i, l in enumerate(labels)})
    )


def cyc(walk, labels):
    return NonLocalConstraint(CYCLE_KIND, walk, labels)


class TestGraphStatistics:
    def test_vertex_counts(self):
        stats = stats_of([(0, 1), (1, 2)], [5, 5, 7])
        assert stats.label_count(5) == 2
        assert stats.label_count(7) == 1
        assert stats.label_count(99) == 0

    def test_pair_edge_counts(self):
        stats = stats_of([(0, 1), (1, 2), (0, 2)], [1, 2, 2])
        assert stats.pair_edge_counts[(1, 2)] == 2
        assert stats.pair_edge_counts[(2, 2)] == 1

    def test_expected_branching(self):
        # Two label-1 vertices, three 1-2 edges total.
        stats = stats_of([(0, 2), (0, 3), (1, 2)], [1, 1, 2, 2])
        assert stats.expected_branching(1, 2) == pytest.approx(1.5)
        # Same-label edges count both endpoints.
        stats2 = stats_of([(0, 1)], [4, 4])
        assert stats2.expected_branching(4, 4) == pytest.approx(1.0)

    def test_branching_zero_for_absent_labels(self):
        stats = stats_of([(0, 1)], [1, 2])
        assert stats.expected_branching(9, 1) == 0.0
        assert stats.expected_branching(1, 9) == 0.0


class TestCostAndSuccess:
    def make_stats(self):
        # Dense 1-2 connectivity, sparse 1-3.
        return stats_of(
            [(0, 2), (0, 3), (1, 2), (1, 3), (0, 4)],
            [1, 1, 2, 2, 3],
        )

    def test_rarer_transitions_cost_less(self):
        stats = self.make_stats()
        dense = cyc((0, 1, 2, 0), (1, 2, 1, 1))
        sparse = cyc((0, 1, 2, 0), (1, 3, 1, 1))
        assert estimate_walk_cost(sparse, stats) < estimate_walk_cost(dense, stats)

    def test_impossible_walk_costs_nothing_downstream(self):
        stats = self.make_stats()
        impossible = cyc((0, 1, 2, 0), (1, 99, 1, 1))
        assert estimate_walk_cost(impossible, stats) == pytest.approx(
            stats.label_count(1) * 0.0 + 0.0
        )
        assert estimate_success_probability(impossible, stats) == 0.0

    def test_success_probability_bounded(self):
        stats = self.make_stats()
        for constraint in (
            cyc((0, 1, 2, 0), (1, 2, 1, 1)),
            cyc((0, 1, 2, 0), (1, 3, 1, 1)),
        ):
            assert 0.0 <= estimate_success_probability(constraint, stats) <= 1.0

    def test_absent_initiator_label(self):
        stats = self.make_stats()
        constraint = cyc((0, 1, 2, 0), (99, 2, 1, 99))
        assert estimate_success_probability(constraint, stats) == 0.0
        assert pruning_efficiency(constraint, stats) == 0.0


class TestOrdering:
    def test_full_walk_always_last(self):
        stats = stats_of([(0, 1), (1, 2), (2, 0)], [1, 2, 3])
        full = NonLocalConstraint(FULL_WALK_KIND, (0, 1, 2, 0), (1, 2, 3, 1))
        cheap = cyc((0, 1, 2, 0), (1, 2, 3, 1))
        ordered = order_constraints_by_cost([full, cheap], stats)
        assert ordered[-1] is full

    def test_efficient_pruners_first(self):
        # likely-failing cheap constraint must precede the likely-passing one
        stats = stats_of(
            [(0, 2), (0, 3), (1, 2), (1, 3), (0, 4)],
            [1, 1, 2, 2, 3],
        )
        likely_fails = cyc((0, 1, 2, 0), (1, 3, 2, 1))   # needs rare 1-3 hop
        likely_holds = cyc((0, 1, 2, 0), (1, 2, 1, 1))   # dense transitions
        ordered = order_constraints_by_cost([likely_holds, likely_fails], stats)
        assert ordered[0] is likely_fails

    def test_deterministic(self):
        stats = stats_of([(0, 1), (1, 2), (2, 0)], [1, 2, 3])
        a = cyc((0, 1, 2, 0), (1, 2, 3, 1))
        b = cyc((1, 2, 0, 1), (2, 3, 1, 2))
        assert order_constraints_by_cost([a, b], stats) == order_constraints_by_cost(
            [b, a], stats
        )


class TestPipelineIntegration:
    def test_walk_cost_ordering_results_invariant(self):
        edges = [(0, 1), (1, 2), (2, 0), (2, 3)]
        labels = [1, 2, 3, 4]
        graph = planted_graph(50, 120, edges, labels, copies=3, seed=21)
        template = PatternTemplate.from_edges(
            edges, {i: l for i, l in enumerate(labels)}, name="t"
        )
        reference = run_pipeline(graph, template, 1, PipelineOptions(num_ranks=2))
        cost_ordered = run_pipeline(
            graph, template, 1,
            PipelineOptions(num_ranks=2, constraint_ordering="walk-cost"),
        )
        assert cost_ordered.match_vectors == reference.match_vectors

    def test_invalid_ordering_rejected(self):
        from repro.errors import PipelineError

        with pytest.raises(PipelineError):
            PipelineOptions(constraint_ordering="magic")
