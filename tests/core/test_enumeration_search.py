"""Tests for match enumeration, extension optimization and SEARCH_PROTOTYPE."""

import pytest

from repro.core import (
    PatternTemplate,
    SearchState,
    count_match_mappings,
    distinct_match_count,
    enumerate_matches,
    extend_from_child_matches,
    generate_constraints,
    generate_prototypes,
    search_prototype,
    state_from_matches,
)
from repro.errors import PipelineError
from repro.graph import from_edges
from repro.graph.generators import planted_graph
from repro.graph.isomorphism import find_subgraph_isomorphisms
from repro.runtime import Engine, MessageStats, PartitionedGraph


def engine_for(graph, ranks=2):
    return Engine(PartitionedGraph(graph, ranks), MessageStats(ranks))


TEMPLATE_EDGES = [(0, 1), (1, 2), (2, 0), (2, 3)]
TEMPLATE_LABELS = [1, 2, 3, 4]


def template():
    return PatternTemplate.from_edges(
        TEMPLATE_EDGES, {i: l for i, l in enumerate(TEMPLATE_LABELS)}, name="tri+tail"
    )


def graph():
    return planted_graph(50, 120, TEMPLATE_EDGES, TEMPLATE_LABELS, copies=3, seed=11)


class TestEnumeration:
    def test_matches_agree_with_reference(self):
        t, g = template(), graph()
        proto = generate_prototypes(t, 0).at(0)[0]
        state = SearchState.initial(g, t)
        ours = {tuple(sorted(m.items())) for m in enumerate_matches(proto, state)}
        reference = {
            tuple(sorted(m.items()))
            for m in find_subgraph_isomorphisms(proto.graph, g)
        }
        assert ours == reference

    def test_role_filter_respected(self):
        t, g = template(), graph()
        proto = generate_prototypes(t, 0).at(0)[0]
        state = SearchState.initial(g, t)
        victim = next(iter(find_subgraph_isomorphisms(proto.graph, g)))[0]
        state.deactivate_vertex(victim)
        for mapping in enumerate_matches(proto, state):
            assert victim not in mapping.values()

    def test_count_and_distinct(self):
        t, g = template(), graph()
        proto = generate_prototypes(t, 0).at(0)[0]
        state = SearchState.initial(g, t)
        mappings = count_match_mappings(proto, state)
        assert distinct_match_count(proto, mappings) == mappings  # no automorphisms

    def test_distinct_count_divisibility_guard(self):
        t = PatternTemplate.from_edges([(0, 1)], labels={0: 0, 1: 0})
        proto = generate_prototypes(t, 0).at(0)[0]
        with pytest.raises(PipelineError):
            distinct_match_count(proto, 3)  # 2 automorphisms

    def test_state_from_matches_is_exact_union(self):
        t, g = template(), graph()
        proto = generate_prototypes(t, 0).at(0)[0]
        state = SearchState.initial(g, t)
        matches = list(enumerate_matches(proto, state))
        reduced = state_from_matches(state, proto, matches)
        expected_vertices = {v for m in matches for v in m.values()}
        assert set(reduced.active_vertices()) == expected_vertices
        for m in matches:
            for u, v in proto.graph.edges():
                assert reduced.edge_is_active(m[u], m[v])


class TestExtension:
    def test_extension_equals_direct_enumeration(self):
        t, g = template(), graph()
        ps = generate_prototypes(t, 1)
        root = ps.at(0)[0]
        state = SearchState.initial(g, t)
        for link in root.child_links:
            child_matches = list(enumerate_matches(link.child, state))
            extended = extend_from_child_matches(root, link.child, child_matches, g)
            direct = list(enumerate_matches(root, state))
            key = lambda m: tuple(sorted(m.items()))  # noqa: E731
            assert sorted(map(key, extended)) == sorted(map(key, direct))

    def test_extension_requires_link(self):
        t, g = template(), graph()
        ps = generate_prototypes(t, 1)
        stranger = ps.at(1)[0]
        with pytest.raises(PipelineError):
            extend_from_child_matches(stranger, ps.at(0)[0], [], g)


class TestSearchPrototype:
    def run_search(self, t, g, proto, **kwargs):
        state = SearchState.initial(g, t).for_prototype_search(proto)
        return (
            search_prototype(
                state,
                proto,
                generate_constraints(proto.graph),
                engine_for(g),
                **kwargs,
            ),
            state,
        )

    def test_exact_solution_subgraph(self):
        t, g = template(), graph()
        proto = generate_prototypes(t, 0).at(0)[0]
        outcome, state = self.run_search(t, g, proto, count_matches=True)
        reference = list(find_subgraph_isomorphisms(proto.graph, g))
        expected = {v for m in reference for v in m.values()}
        assert outcome.solution_vertices == expected
        assert outcome.match_mappings == len(reference)
        assert outcome.exact

    def test_collect_matches(self):
        t, g = template(), graph()
        proto = generate_prototypes(t, 0).at(0)[0]
        outcome, _ = self.run_search(t, g, proto, collect_matches=True)
        assert outcome.matches
        for m in outcome.matches:
            for u, v in proto.graph.edges():
                assert g.has_edge(m[u], m[v])

    def test_enumeration_verification_mode(self):
        t, g = template(), graph()
        proto = generate_prototypes(t, 0).at(0)[0]
        auto, _ = self.run_search(t, g, proto, count_matches=True)
        enum, _ = self.run_search(
            t, g, proto, count_matches=True, verification="enumeration"
        )
        assert enum.solution_vertices == auto.solution_vertices
        assert enum.match_mappings == auto.match_mappings

    def test_constraints_only_mode_without_full_walk_is_superset(self):
        t, g = template(), graph()
        proto = generate_prototypes(t, 0).at(0)[0]
        state = SearchState.initial(g, t).for_prototype_search(proto)
        outcome = search_prototype(
            state,
            proto,
            generate_constraints(proto.graph, include_full_walk=False),
            engine_for(g),
            verification="constraints",
        )
        assert not outcome.exact  # cyclic template, no full walk, no enumeration
        reference = {
            v
            for m in find_subgraph_isomorphisms(proto.graph, g)
            for v in m.values()
        }
        assert reference <= outcome.solution_vertices

    def test_tree_prototype_exact_without_walk(self):
        t = PatternTemplate.from_edges(
            [(0, 1), (1, 2)], labels={0: 1, 1: 2, 2: 3}
        )
        g = planted_graph(40, 80, t.edges(), [1, 2, 3], copies=2, seed=5)
        proto = generate_prototypes(t, 0).at(0)[0]
        outcome, _ = self.run_search(t, g, proto)
        assert outcome.exact
        assert outcome.nlcc_constraints_checked == 0
        reference = {
            v for m in find_subgraph_isomorphisms(t.graph, g) for v in m.values()
        }
        assert outcome.solution_vertices == reference

    def test_empty_graph_short_circuits(self):
        t = template()
        g = from_edges([(0, 1)], labels={0: 9, 1: 9})
        proto = generate_prototypes(t, 0).at(0)[0]
        outcome, _ = self.run_search(t, g, proto, count_matches=True)
        assert outcome.solution_vertices == set()
        assert outcome.match_mappings == 0
