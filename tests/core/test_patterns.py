"""Tests for the paper's template zoo and its use-case semantics."""

import pytest

from repro.core import PipelineOptions, run_pipeline
from repro.core.patterns import (
    PAPER_PATTERNS,
    imdb1_template,
    rdt1_template,
    rmat1_template,
    wdc2_template,
)
from repro.errors import TemplateError
from repro.graph.generators import imdb_graph, reddit_graph
from repro.graph.generators import reddit as rdt


class TestZooShape:
    def test_all_patterns_buildable(self):
        for name, (factory, k) in PAPER_PATTERNS.items():
            template = factory()
            assert template.name == name
            assert k <= template.max_meaningful_distance() or k <= 4

    def test_rmat1_needs_distinct_labels(self):
        with pytest.raises(TemplateError):
            rmat1_template(labels=[1, 1, 2, 3, 4, 5])
        with pytest.raises(TemplateError):
            rmat1_template(labels=[1, 2, 3])

    def test_wdc2_stressors(self):
        from repro.core import is_edge_monocyclic

        t = wdc2_template()
        assert t.has_duplicate_labels()
        assert not is_edge_monocyclic(t.graph)

    def test_rdt1_mandatory_structure(self):
        t = rdt1_template()
        assert len(t.mandatory_edges) == 4
        assert len(t.optional_edges()) == 4

    def test_imdb1_mandatory_structure(self):
        t = imdb1_template()
        assert len(t.mandatory_edges) == 5
        assert len(t.optional_edges()) == 3


class TestRdt1Semantics:
    """§5.5: adversarial poster-commenter matches with optional edges."""

    def test_planted_instances_found_precisely(self):
        g = reddit_graph(num_authors=60, num_subreddits=8, planted_rdt1=3, seed=21)
        result = run_pipeline(g, rdt1_template(), 1, PipelineOptions(num_ranks=2))
        root = result.prototype_set.at(0)[0]
        exact_vertices = result.outcome_for(root.id).solution_vertices
        assert exact_vertices, "planted full structures must match exactly"
        # Containment rule: the exact solution lies inside the union of the
        # k=1 prototype solutions.
        union_k1 = set()
        for proto in result.prototype_set.at(1):
            union_k1 |= result.outcome_for(proto.id).solution_vertices
        assert exact_vertices <= union_k1

    def test_distinct_subreddits_enforced(self):
        """Posts under the *same* subreddit must not match (PC checks)."""
        from repro.graph.graph import Graph

        g = Graph()
        labels = {
            0: rdt.AUTHOR, 1: rdt.POST_POSITIVE, 2: rdt.POST_NEGATIVE,
            3: rdt.COMMENT_NEGATIVE, 4: rdt.COMMENT_POSITIVE, 5: rdt.SUBREDDIT,
        }
        for v, lab in labels.items():
            g.add_vertex(v, lab)
        # Full RDT-1 wiring but BOTH posts under the single subreddit 5.
        for u, v in [(0, 1), (0, 2), (0, 3), (0, 4), (1, 3), (2, 4), (1, 5), (2, 5)]:
            g.add_edge(u, v)
        result = run_pipeline(g, rdt1_template(), 1, PipelineOptions(num_ranks=1))
        assert result.match_vectors == {}

    def test_missing_author_edge_matches_only_relaxed_prototypes(self):
        g = reddit_graph(num_authors=40, num_subreddits=6, planted_rdt1=0, seed=22)
        # Plant a structure with one author-comment edge missing.
        rng_base = max(g.vertices()) + 1
        labels = [
            rdt.AUTHOR, rdt.POST_POSITIVE, rdt.POST_NEGATIVE,
            rdt.COMMENT_NEGATIVE, rdt.COMMENT_POSITIVE, rdt.SUBREDDIT, rdt.SUBREDDIT,
        ]
        for offset, lab in enumerate(labels):
            g.add_vertex(rng_base + offset, lab)
        wiring = [(0, 1), (0, 2), (0, 3), (1, 3), (2, 4), (1, 5), (2, 6)]
        for u, v in wiring:  # note: (0, 4) missing
            g.add_edge(rng_base + u, rng_base + v)
        result = run_pipeline(g, rdt1_template(), 1, PipelineOptions(num_ranks=2))
        root = result.prototype_set.at(0)[0]
        author = rng_base
        assert author not in result.vertices_matching(root.id)
        assert root.id not in result.match_vector(author)
        assert result.match_vector(author), "author must match a k=1 prototype"


class TestImdb1Semantics:
    def test_planted_instances_found(self):
        g = imdb_graph(num_movies=60, planted_imdb1=2, seed=23)
        result = run_pipeline(g, imdb1_template(), 2, PipelineOptions(num_ranks=2))
        root = result.prototype_set.at(0)[0]
        assert result.outcome_for(root.id).solution_vertices

    def test_both_movies_need_shared_genre(self):
        from repro.graph.graph import Graph
        from repro.graph.generators.imdb import ACTOR, ACTRESS, DIRECTOR, GENRE, MOVIE

        g = Graph()
        labels = {0: ACTRESS, 1: ACTOR, 2: DIRECTOR, 3: MOVIE, 4: MOVIE,
                  5: GENRE, 6: GENRE}
        for v, lab in labels.items():
            g.add_vertex(v, lab)
        # Shared cast but different genres for the two movies.
        for u, v in [(0, 3), (0, 4), (1, 3), (1, 4), (2, 3), (2, 4), (3, 5), (4, 6)]:
            g.add_edge(u, v)
        result = run_pipeline(g, imdb1_template(), 2, PipelineOptions(num_ranks=1))
        assert result.match_vectors == {}
