"""Tests for result objects and the error hierarchy."""

import pytest

from repro.core import PipelineOptions, run_pipeline
from repro.core.results import LevelReport, PipelineResult, PrototypeSearchOutcome
from repro.core.template import PatternTemplate
from repro.errors import (
    CheckpointError,
    ConstraintError,
    EngineError,
    GraphError,
    MemoryLimitExceeded,
    PartitionError,
    PipelineError,
    PrototypeError,
    ReproError,
    TemplateError,
)
from repro.graph.generators import planted_graph


class TestErrorHierarchy:
    @pytest.mark.parametrize("error_type", [
        GraphError, TemplateError, PrototypeError, ConstraintError,
        PartitionError, EngineError, PipelineError, CheckpointError,
        MemoryLimitExceeded,
    ])
    def test_all_derive_from_repro_error(self, error_type):
        if error_type is MemoryLimitExceeded:
            instance = error_type(100, 50, "test")
        else:
            instance = error_type("boom")
        assert isinstance(instance, ReproError)

    def test_memory_limit_carries_context(self):
        error = MemoryLimitExceeded(2048, 1024, where="superstep 3")
        assert error.used_bytes == 2048
        assert error.limit_bytes == 1024
        assert "superstep 3" in str(error)
        assert "2048" in str(error)


class TestResultObjects:
    def make_result(self):
        edges = [(0, 1), (1, 2), (2, 0)]
        labels = [1, 2, 3]
        graph = planted_graph(30, 60, edges, labels, copies=2, seed=8)
        template = PatternTemplate.from_edges(
            edges, {i: l for i, l in enumerate(labels)}, name="tri"
        )
        return graph, run_pipeline(
            graph, template, 1, PipelineOptions(num_ranks=2, count_matches=True)
        )

    def test_outcome_repr(self):
        _graph, result = self.make_result()
        outcome = result.outcomes()[0]
        assert outcome.name in repr(outcome)
        assert isinstance(outcome, PrototypeSearchOutcome)

    def test_level_report_labels(self):
        _graph, result = self.make_result()
        for level in result.levels:
            assert level.labels_generated() == sum(
                len(o.solution_vertices) for o in level.outcomes
            )
            assert level.num_prototypes == len(level.outcomes)
            assert str(level.distance) in repr(level)

    def test_total_distinct_matches(self):
        _graph, result = self.make_result()
        assert result.total_distinct_matches() == sum(
            o.distinct_matches for o in result.outcomes()
        )

    def test_totals_none_when_not_counted(self):
        edges = [(0, 1), (1, 2), (2, 0)]
        graph = planted_graph(30, 60, edges, [1, 2, 3], copies=1, seed=9)
        template = PatternTemplate.from_edges(
            edges, {0: 1, 1: 2, 2: 3}, name="tri"
        )
        result = run_pipeline(graph, template, 0, PipelineOptions(num_ranks=2))
        # Cyclic prototypes count for free via the full walk; force the
        # no-count path through a distinct-label tree.
        tree = PatternTemplate.from_edges([(0, 1)], labels={0: 1, 1: 2})
        tree_result = run_pipeline(graph, tree, 0, PipelineOptions(num_ranks=2))
        assert tree_result.total_match_mappings() is None

    def test_repr_roundtrip(self):
        _graph, result = self.make_result()
        assert "tri" in repr(result)
        assert isinstance(result, PipelineResult)

    def test_union_subgraph_edges_are_match_edges(self):
        graph, result = self.make_result()
        union = result.union_subgraph(graph)
        for u, v in union.edges():
            assert graph.has_edge(u, v)

    def test_has_matches_flag(self):
        _graph, result = self.make_result()
        for outcome in result.outcomes():
            assert outcome.has_matches == bool(outcome.solution_vertices)


class TestBatchSizeInvariance:
    """The asynchronous schedule must never change results."""

    @pytest.mark.parametrize("batch_size", [1, 7, 64, 1000])
    def test_results_stable_under_scheduling(self, batch_size):
        edges = [(0, 1), (1, 2), (2, 0), (2, 3)]
        labels = [1, 2, 3, 4]
        graph = planted_graph(40, 90, edges, labels, copies=2, seed=10)
        template = PatternTemplate.from_edges(
            edges, {i: l for i, l in enumerate(labels)}, name="t"
        )
        reference = run_pipeline(
            graph, template, 1, PipelineOptions(num_ranks=3, batch_size=64)
        )
        result = run_pipeline(
            graph, template, 1,
            PipelineOptions(num_ranks=3, batch_size=batch_size),
        )
        assert result.match_vectors == reference.match_vectors
        assert (
            result.message_summary["total_messages"]
            == reference.message_summary["total_messages"]
        )
