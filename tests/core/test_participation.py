"""Tests for participation-rate feature vectors (Def. 3's richer variant)."""

from repro.core import (
    PatternTemplate,
    PipelineOptions,
    participation_rates,
    run_pipeline,
)
from repro.graph.generators import planted_graph
from repro.graph.isomorphism import find_subgraph_isomorphisms

EDGES = [(0, 1), (1, 2), (2, 0)]
LABELS = [1, 2, 3]


def workload():
    graph = planted_graph(40, 90, EDGES, LABELS, copies=2, num_labels=4, seed=27)
    template = PatternTemplate.from_edges(
        EDGES, {i: l for i, l in enumerate(LABELS)}, name="tri"
    )
    return graph, template


class TestParticipationRates:
    def test_counts_match_brute_force(self):
        graph, template = workload()
        result = run_pipeline(graph, template, 1, PipelineOptions(num_ranks=2))
        rates = participation_rates(result, graph)
        for proto in result.prototype_set:
            expected = {}
            for mapping in find_subgraph_isomorphisms(proto.graph, graph):
                for vertex in set(mapping.values()):
                    expected[vertex] = expected.get(vertex, 0) + 1
            for vertex, count in expected.items():
                assert rates[vertex][proto.id] == count

    def test_support_equals_match_vectors(self):
        graph, template = workload()
        result = run_pipeline(graph, template, 1, PipelineOptions(num_ranks=2))
        rates = participation_rates(result, graph)
        support = {v: set(per_proto) for v, per_proto in rates.items()}
        assert support == {v: set(ids) for v, ids in result.match_vectors.items()}

    def test_rates_positive(self):
        graph, template = workload()
        result = run_pipeline(graph, template, 0, PipelineOptions(num_ranks=2))
        for per_proto in participation_rates(result, graph).values():
            assert all(count > 0 for count in per_proto.values())
