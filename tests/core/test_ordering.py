"""Tests for constraint/prototype ordering heuristics."""

import pytest

from repro.core import (
    estimate_prototype_cost,
    generate_prototypes,
    order_constraints,
    parallel_makespan,
    schedule_prototypes,
)
from repro.core.constraints import (
    CYCLE_KIND,
    FULL_WALK_KIND,
    PATH_KIND,
    NonLocalConstraint,
)
from repro.core.ordering import orient_walk
from repro.core.patterns import wdc1_template


def cyc(walk, labels):
    return NonLocalConstraint(CYCLE_KIND, walk, labels)


class TestOrientWalk:
    def test_prefers_rare_labels_early(self):
        constraint = cyc((0, 1, 2, 0), (5, 6, 7, 5))
        freq = {5: 10, 6: 100, 7: 1}
        oriented = orient_walk(constraint, freq)
        assert oriented.labels[1] == 7  # rare label visited first

    def test_keeps_direction_when_already_good(self):
        constraint = cyc((0, 1, 2, 0), (5, 1, 9, 5))
        freq = {5: 10, 1: 1, 9: 100}
        assert orient_walk(constraint, freq).walk == constraint.walk


class TestOrderConstraints:
    def test_kind_priority(self):
        full = NonLocalConstraint(FULL_WALK_KIND, (0, 1, 0), (1, 2, 1))
        path = NonLocalConstraint(PATH_KIND, (0, 1, 2, 1, 0), (1, 2, 1, 2, 1))
        cycle = cyc((0, 1, 2, 0), (1, 2, 3, 1))
        ordered = order_constraints([full, path, cycle])
        assert [c.kind for c in ordered] == [CYCLE_KIND, PATH_KIND, FULL_WALK_KIND]

    def test_shorter_first_within_kind(self):
        short = cyc((0, 1, 2, 0), (1, 2, 3, 1))
        long = cyc((0, 1, 2, 3, 0), (1, 2, 3, 4, 1))
        assert order_constraints([long, short])[0] is short

    def test_rare_label_constraint_first_when_optimized(self):
        common = cyc((0, 1, 2, 0), (9, 9, 9, 9))
        rare = cyc((3, 4, 5, 3), (1, 1, 1, 1))
        freq = {9: 1000, 1: 2}
        ordered = order_constraints([common, rare], freq, optimize=True)
        assert ordered[0].labels[0] == 1

    def test_unoptimized_is_deterministic(self):
        a = cyc((0, 1, 2, 0), (3, 1, 2, 3))
        b = cyc((0, 1, 2, 0), (2, 1, 3, 2))
        assert order_constraints([a, b]) == order_constraints([b, a])


class TestPrototypeScheduling:
    def test_lpt_beats_round_robin(self):
        costs = [10.0, 1.0, 1.0, 1.0, 9.0, 1.0]
        lpt = schedule_prototypes(costs, 2, optimize=True)
        rr = schedule_prototypes(costs, 2, optimize=False)
        assert parallel_makespan(costs, lpt) <= parallel_makespan(costs, rr)

    def test_all_prototypes_assigned_once(self):
        costs = [3.0, 1.0, 4.0, 1.0, 5.0]
        batches = schedule_prototypes(costs, 3)
        assigned = sorted(i for batch in batches for i in batch)
        assert assigned == list(range(5))

    def test_zero_deployments_rejected(self):
        with pytest.raises(ValueError):
            schedule_prototypes([1.0], 0)

    def test_makespan_empty(self):
        assert parallel_makespan([], []) == 0.0

    def test_estimate_scales_with_density(self):
        ps = generate_prototypes(wdc1_template(), 2)
        freq = {label: 10 for label in wdc1_template().label_set()}
        root_cost = estimate_prototype_cost(ps.at(0)[0], freq)
        deep_tree = min(ps.at(2), key=lambda p: p.num_edges)
        assert root_cost > estimate_prototype_cost(deep_tree, freq)
