"""Integration tests: the full pipeline vs brute-force ground truth."""

import pytest

from repro.core import (
    PipelineOptions,
    generate_prototypes,
    naive_options,
    naive_search,
    run_pipeline,
)
from repro.core.patterns import rmat1_template, wdc1_template
from repro.core.template import PatternTemplate
from repro.errors import PipelineError
from repro.graph.generators import planted_graph
from repro.graph.isomorphism import find_subgraph_isomorphisms

TEMPLATE_EDGES = [(0, 1), (1, 2), (2, 0), (2, 3)]
TEMPLATE_LABELS = [1, 2, 3, 4]


def template():
    return PatternTemplate.from_edges(
        TEMPLATE_EDGES, {i: l for i, l in enumerate(TEMPLATE_LABELS)}, name="tri+tail"
    )


def graph(seed=11):
    return planted_graph(
        60, 150, TEMPLATE_EDGES, TEMPLATE_LABELS, copies=3, seed=seed
    )


def reference_vectors(g, t, k):
    """Brute-force per-vertex prototype membership."""
    vectors = {}
    for proto in generate_prototypes(t, k):
        for mapping in find_subgraph_isomorphisms(proto.graph, g):
            for v in mapping.values():
                vectors.setdefault(v, set()).add(proto.id)
    return vectors


class TestPrecisionRecall:
    """The paper's headline guarantee: 100% precision AND 100% recall."""

    @pytest.mark.parametrize("k", [0, 1, 2])
    def test_match_vectors_exact(self, k):
        g, t = graph(), template()
        result = run_pipeline(g, t, k, PipelineOptions(num_ranks=3))
        assert result.match_vectors == reference_vectors(g, t, k)

    def test_solution_edges_exact(self):
        g, t = graph(), template()
        result = run_pipeline(g, t, 1, PipelineOptions(num_ranks=3))
        for proto in result.prototype_set:
            expected_edges = set()
            for m in find_subgraph_isomorphisms(proto.graph, g):
                for u, v in proto.graph.edges():
                    a, b = m[u], m[v]
                    expected_edges.add((min(a, b), max(a, b)))
            assert result.outcome_for(proto.id).solution_edges == expected_edges

    def test_counts_exact(self):
        g, t = graph(), template()
        result = run_pipeline(
            g, t, 1, PipelineOptions(num_ranks=3, count_matches=True)
        )
        for proto in result.prototype_set:
            expected = sum(1 for _ in find_subgraph_isomorphisms(proto.graph, g))
            assert result.outcome_for(proto.id).match_mappings == expected

    def test_enumeration_verification_equivalent(self):
        g, t = graph(), template()
        auto = run_pipeline(g, t, 1, PipelineOptions(num_ranks=3))
        enum = run_pipeline(
            g, t, 1, PipelineOptions(num_ranks=3, verification="enumeration")
        )
        assert auto.match_vectors == enum.match_vectors


class TestOptionEquivalence:
    """Every optimization knob changes cost, never results."""

    BASE = dict(num_ranks=3)

    @pytest.mark.parametrize(
        "options",
        [
            PipelineOptions(num_ranks=3, work_recycling=False),
            PipelineOptions(num_ranks=3, use_containment=False),
            PipelineOptions(num_ranks=3, use_max_candidate_set=False),
            PipelineOptions(num_ranks=3, constraint_ordering=False),
            PipelineOptions(num_ranks=3, load_balance="reshuffle"),
            PipelineOptions(num_ranks=6, reload_ranks=2),
            PipelineOptions(num_ranks=6, parallel_deployments=3),
            PipelineOptions(num_ranks=3, delegate_degree_threshold=8),
            PipelineOptions(num_ranks=3, include_full_walk=False,
                            verification="enumeration"),
            PipelineOptions(num_ranks=3, count_matches=True,
                            enumeration_optimization=True),
            PipelineOptions(num_ranks=1),
        ],
        ids=[
            "no-recycling", "no-containment", "no-mcs", "no-ordering",
            "reshuffle", "reload", "parallel", "delegates",
            "enumeration-only", "extension", "single-rank",
        ],
    )
    def test_results_invariant(self, options):
        g, t = graph(), template()
        reference = reference_vectors(g, t, 2)
        result = run_pipeline(g, t, 2, options)
        assert result.match_vectors == reference

    def test_reload_ranks_zero_disables_reload(self):
        """reload_ranks=0 is falsy: no rebalance cost, same deployment."""
        g, t = graph(), template()
        result = run_pipeline(
            g, t, 1, PipelineOptions(num_ranks=3, reload_ranks=0)
        )
        reference = run_pipeline(g, t, 1, PipelineOptions(num_ranks=3))
        assert result.match_vectors == reference.match_vectors
        # The reload must be fully off: no rebalancing infrastructure time
        # is charged (the old truthiness leak made this flag an int/None).
        assert result.total_infrastructure_seconds == 0.0
        assert (
            result.total_simulated_seconds == reference.total_simulated_seconds
        )

    def test_reload_ranks_nonzero_engages_reload(self):
        """A real reload target must charge rebalancing infrastructure."""
        g, t = graph(), template()
        result = run_pipeline(
            g, t, 1, PipelineOptions(num_ranks=6, reload_ranks=2)
        )
        assert result.total_infrastructure_seconds > 0.0

    def test_naive_equivalent(self):
        g, t = graph(), template()
        assert (
            naive_search(g, t, 2, PipelineOptions(num_ranks=3)).match_vectors
            == reference_vectors(g, t, 2)
        )


class TestReporting:
    def test_levels_run_bottom_up(self):
        g, t = graph(), template()
        result = run_pipeline(g, t, 1, PipelineOptions(num_ranks=2))
        assert [lvl.distance for lvl in result.levels] == [1, 0]

    def test_k_clamped_to_meaningful_distance(self):
        g, t = graph(), template()  # 4 vertices, 4 edges -> max distance 1
        result = run_pipeline(g, t, 5, PipelineOptions(num_ranks=2))
        assert [lvl.distance for lvl in result.levels] == [1, 0]

    def test_candidate_set_reported(self):
        g, t = graph(), template()
        result = run_pipeline(g, t, 1, PipelineOptions(num_ranks=2))
        assert result.candidate_set_vertices > 0
        assert result.candidate_set_seconds > 0

    def test_union_sizes_shrink_with_distance(self):
        t = wdc1_template()
        labels = [t.label(v) for v in sorted(t.graph.vertices())]
        g = planted_graph(200, 450, t.edges(), labels, copies=3, num_labels=12, seed=6)
        result = run_pipeline(g, t, 2, PipelineOptions(num_ranks=2))
        # deeper levels (more relaxed prototypes) match at least as much
        sizes = {lvl.distance: lvl.union_vertices for lvl in result.levels}
        assert sizes[2] >= sizes[1] >= sizes[0]

    def test_message_summary(self):
        g, t = graph(), template()
        result = run_pipeline(g, t, 1, PipelineOptions(num_ranks=2))
        summary = result.message_summary
        assert summary["total_messages"] > 0
        assert 0 <= summary["remote_fraction"] <= 1
        assert "max_candidate_set" in summary["phases"]

    def test_total_labels(self):
        g, t = graph(), template()
        result = run_pipeline(g, t, 1, PipelineOptions(num_ranks=2))
        assert result.total_labels_generated() == sum(
            len(v) for v in result.match_vectors.values()
        )

    def test_union_subgraph(self):
        g, t = graph(), template()
        result = run_pipeline(g, t, 1, PipelineOptions(num_ranks=2))
        union = result.union_subgraph(g)
        assert set(union.vertices()) == result.matched_vertices()

    def test_match_vector_accessors(self):
        g, t = graph(), template()
        result = run_pipeline(g, t, 1, PipelineOptions(num_ranks=2))
        some_vertex = next(iter(result.match_vectors))
        assert result.match_vector(some_vertex)
        assert result.match_vector(-999) == frozenset()
        root = result.prototype_set.at(0)[0]
        assert result.vertices_matching(root.id) <= result.matched_vertices()

    def test_level_for_and_outcome_for_missing(self):
        g, t = graph(), template()
        result = run_pipeline(g, t, 1, PipelineOptions(num_ranks=2))
        assert result.level_for(0).distance == 0
        with pytest.raises(KeyError):
            result.level_for(9)
        with pytest.raises(KeyError):
            result.outcome_for(10**6)

    def test_wall_and_simulated_times_positive(self):
        g, t = graph(), template()
        result = run_pipeline(g, t, 1, PipelineOptions(num_ranks=2))
        assert result.total_wall_seconds > 0
        assert result.total_simulated_seconds > 0


class TestOptionValidation:
    def test_bad_parallel(self):
        with pytest.raises(PipelineError):
            PipelineOptions(parallel_deployments=0)

    def test_bad_load_balance(self):
        with pytest.raises(PipelineError):
            PipelineOptions(load_balance="magic")

    def test_bad_verification(self):
        with pytest.raises(PipelineError):
            PipelineOptions(verification="hope")

    def test_bad_cost_source(self):
        with pytest.raises(PipelineError):
            PipelineOptions(prototype_cost_source="oracle")

    def test_naive_options_disable_optimizations(self):
        opts = naive_options(PipelineOptions(num_ranks=7))
        assert opts.num_ranks == 7
        assert not opts.use_max_candidate_set
        assert not opts.use_containment
        assert not opts.work_recycling


class TestOptimizationEffects:
    """The paper's cost claims, at small scale: optimizations reduce work."""

    def test_hgt_fewer_messages_than_naive_on_selective_pattern(self):
        # WDC-1-like setting: selective labels, k=2, planted matches.
        t = wdc1_template()
        labels = [t.label(v) for v in sorted(t.graph.vertices())]
        edges = t.edges()
        g = planted_graph(300, 700, edges, labels, copies=3, num_labels=12, seed=3)
        hgt = run_pipeline(g, t, 2, PipelineOptions(num_ranks=4))
        nve = naive_search(g, t, 2, PipelineOptions(num_ranks=4))
        assert hgt.message_summary["total_messages"] < nve.message_summary[
            "total_messages"
        ]
        assert hgt.match_vectors == nve.match_vectors

    def test_recycling_reduces_nlcc_messages(self):
        t = rmat1_template(labels=[0, 1, 2, 3, 4, 5])
        labels = [t.label(v) for v in sorted(t.graph.vertices())]
        g = planted_graph(200, 500, t.edges(), labels, copies=3, num_labels=8, seed=4)
        with_recycling = run_pipeline(g, t, 2, PipelineOptions(num_ranks=2))
        without = run_pipeline(
            g, t, 2, PipelineOptions(num_ranks=2, work_recycling=False)
        )
        assert (
            with_recycling.message_summary["phases"]["nlcc"]["messages"]
            <= without.message_summary["phases"]["nlcc"]["messages"]
        )
        assert with_recycling.match_vectors == without.match_vectors

    def test_reshuffle_improves_simulated_time_under_skew(self):
        t = wdc1_template()
        labels = [t.label(v) for v in sorted(t.graph.vertices())]
        g = planted_graph(300, 700, t.edges(), labels, copies=4, num_labels=12, seed=5)
        balanced = run_pipeline(
            g, t, 1, PipelineOptions(num_ranks=4, load_balance="reshuffle")
        )
        plain = run_pipeline(g, t, 1, PipelineOptions(num_ranks=4))
        assert balanced.match_vectors == plain.match_vectors
        # reshuffled runs should not be drastically worse
        assert balanced.total_simulated_seconds < 3 * plain.total_simulated_seconds
