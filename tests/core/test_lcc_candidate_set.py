"""Tests for local constraint checking and max-candidate-set generation."""

import pytest

from repro.core import (
    PatternTemplate,
    SearchState,
    generate_prototypes,
    local_constraint_checking,
    max_candidate_set,
)
from repro.graph import from_edges
from repro.graph.isomorphism import find_subgraph_isomorphisms
from repro.runtime import Engine, MessageStats, PartitionedGraph


def engine_for(graph, ranks=2):
    return Engine(PartitionedGraph(graph, ranks), MessageStats(ranks))


def run_lcc(graph, template, k=0):
    proto = generate_prototypes(template, k).at(0)[0]
    state = SearchState.initial(graph, template)
    iterations = local_constraint_checking(state, proto.graph, engine_for(graph))
    return state, iterations


class TestLcc:
    def test_prunes_wrong_labels(self):
        template = PatternTemplate.from_edges([(0, 1)], labels={0: 1, 1: 2})
        graph = from_edges([(0, 1), (1, 2)], labels={0: 1, 1: 2, 2: 9})
        state, _ = run_lcc(graph, template)
        assert state.is_active(0)
        assert not state.is_active(2)

    def test_prunes_missing_neighbors(self):
        # Path template 1-2-3; vertex with label 2 but no 3-neighbor dies.
        template = PatternTemplate.from_edges(
            [(0, 1), (1, 2)], labels={0: 1, 1: 2, 2: 3}
        )
        graph = from_edges(
            [(0, 1), (1, 2), (3, 4)], labels={0: 1, 1: 2, 2: 3, 3: 1, 4: 2}
        )
        state, _ = run_lcc(graph, template)
        assert state.is_active(1)
        assert not state.is_active(4)  # its only 2-labeled use lacks a 3-neighbor
        assert not state.is_active(3)  # cascades

    def test_iterative_cascade(self):
        # Chain where pruning the tail invalidates the whole chain.
        template = PatternTemplate.from_edges(
            [(0, 1), (1, 2), (2, 3)], labels={0: 1, 1: 2, 2: 3, 3: 4}
        )
        graph = from_edges(
            [(0, 1), (1, 2)], labels={0: 1, 1: 2, 2: 3}
        )  # no label-4 vertex at all
        state, iterations = run_lcc(graph, template)
        assert state.num_active_vertices == 0
        assert iterations >= 2

    def test_exact_on_distinct_label_tree(self):
        template = PatternTemplate.from_edges(
            [(0, 1), (1, 2), (1, 3)], labels={0: 1, 1: 2, 2: 3, 3: 4}
        )
        from repro.graph.generators import planted_graph

        graph = planted_graph(50, 120, template.edges(), [1, 2, 3, 4], copies=3, seed=2)
        state, _ = run_lcc(graph, template)
        expected = set()
        for mapping in find_subgraph_isomorphisms(template.graph, graph):
            expected.update(mapping.values())
        assert set(state.active_vertices()) == expected

    def test_edge_pruning(self):
        template = PatternTemplate.from_edges([(0, 1)], labels={0: 1, 1: 2})
        graph = from_edges(
            [(0, 1), (0, 2)], labels={0: 1, 1: 2, 2: 2}
        )
        graph.add_vertex(3, 1)
        graph.add_edge(2, 3)
        state, _ = run_lcc(graph, template)
        # all 1-2 edges legitimate here; now test a wrong-pair edge
        graph2 = from_edges([(0, 1), (1, 2)], labels={0: 1, 1: 2, 2: 1})
        state2, _ = run_lcc(graph2, template)
        assert state2.edge_is_active(0, 1)
        assert state2.edge_is_active(1, 2)

    def test_max_iterations_bound(self):
        template = PatternTemplate.from_edges(
            [(0, 1), (1, 2), (2, 3)], labels={0: 1, 1: 2, 2: 3, 3: 4}
        )
        graph = from_edges([(0, 1), (1, 2)], labels={0: 1, 1: 2, 2: 3})
        state = SearchState.initial(graph, template)
        proto = generate_prototypes(template, 0).at(0)[0]
        iterations = local_constraint_checking(
            state, proto.graph, engine_for(graph), max_iterations=1
        )
        assert iterations == 1

    def test_messages_attributed_to_lcc_phase(self):
        template = PatternTemplate.from_edges([(0, 1)], labels={0: 1, 1: 2})
        graph = from_edges([(0, 1)], labels={0: 1, 1: 2})
        engine = engine_for(graph)
        state = SearchState.initial(graph, template)
        proto = generate_prototypes(template, 0).at(0)[0]
        local_constraint_checking(state, proto.graph, engine)
        assert engine.stats.phases["lcc"].messages > 0


class TestMaxCandidateSet:
    def template(self):
        return PatternTemplate.from_edges(
            [(0, 1), (1, 2), (2, 0), (2, 3)],
            labels={0: 1, 1: 2, 2: 3, 3: 4},
        )

    def test_superset_of_all_prototype_matches(self):
        from repro.graph.generators import planted_graph

        template = self.template()
        graph = planted_graph(60, 150, template.edges(), [1, 2, 3, 4], copies=3, seed=4)
        mstar = max_candidate_set(graph, template, engine_for(graph))
        protos = generate_prototypes(template, 2)
        for proto in protos:
            for mapping in find_subgraph_isomorphisms(proto.graph, graph):
                for vertex in mapping.values():
                    assert mstar.is_active(vertex)

    def test_excludes_foreign_labels(self):
        template = self.template()
        graph = from_edges([(0, 1)], labels={0: 1, 1: 99})
        mstar = max_candidate_set(graph, template, engine_for(graph))
        assert not mstar.is_active(1)

    def test_excludes_isolated_candidates(self):
        template = self.template()
        graph = from_edges([(0, 1)], labels={0: 1, 1: 2})
        graph.add_vertex(5, 3)  # right label, no usable neighbors
        mstar = max_candidate_set(graph, template, engine_for(graph))
        assert not mstar.is_active(5)

    def test_weaker_than_lcc(self):
        """M* keeps vertices that only match *some* prototype, not H0."""
        template = self.template()
        # A 1-2 edge alone: survives in M* (each role keeps >=1 neighbor)
        # but can't match the full template.
        graph = from_edges([(0, 1), (1, 2), (2, 0), (2, 3), (10, 11)],
                           labels={0: 1, 1: 2, 2: 3, 3: 4, 10: 1, 11: 2})
        mstar = max_candidate_set(graph, template, engine_for(graph))
        assert mstar.is_active(10)
        assert mstar.is_active(11)

    def test_mandatory_neighbors_enforced(self):
        template = PatternTemplate.from_edges(
            [(0, 1), (1, 2)],
            labels={0: 1, 1: 2, 2: 3},
            mandatory_edges=[(1, 2)],
        )
        graph = from_edges([(0, 1), (2, 3), (3, 4)],
                           labels={0: 1, 1: 2, 2: 1, 3: 2, 4: 3})
        mstar = max_candidate_set(graph, template, engine_for(graph))
        # vertex 1 (label 2) has no label-3 neighbor -> mandatory check kills it
        assert not mstar.is_active(1)
        assert mstar.is_active(3)

    def test_single_vertex_template(self):
        template = PatternTemplate.from_edges([], labels={0: 7})
        graph = from_edges([(0, 1)], labels={0: 7, 1: 8})
        mstar = max_candidate_set(graph, template, engine_for(graph))
        assert mstar.is_active(0)
        assert not mstar.is_active(1)

    def test_messages_attributed_to_phase(self):
        template = self.template()
        graph = from_edges([(0, 1), (1, 2), (2, 0), (2, 3)],
                           labels={0: 1, 1: 2, 2: 3, 3: 4})
        engine = engine_for(graph)
        max_candidate_set(graph, template, engine)
        assert engine.stats.phases["max_candidate_set"].messages > 0
