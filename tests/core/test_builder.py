"""Tests for the fluent TemplateBuilder."""

import pytest

from repro.core import PipelineOptions, run_pipeline
from repro.core.builder import TemplateBuilder
from repro.core.wildcards import WILDCARD
from repro.errors import TemplateError
from repro.graph.generators import planted_graph


def build_triangle():
    return (
        TemplateBuilder("tri")
        .vertex("a", label=1)
        .vertex("b", label=2)
        .vertex("c", label=3)
        .edge("a", "b")
        .edge("b", "c", mandatory=True)
        .edge("c", "a", label=7)
        .build()
    )


class TestBuilding:
    def test_ids_follow_insertion_order(self):
        builder = TemplateBuilder().vertex("x", 1).vertex("y", 2)
        assert builder.vertex_id("x") == 0
        assert builder.vertex_id("y") == 1
        assert builder.vertex_names() == {0: "x", 1: "y"}

    def test_full_feature_template(self):
        template = build_triangle()
        assert template.name == "tri"
        assert template.num_edges == 3
        assert (1, 2) in template.mandatory_edges  # b-c
        assert template.graph.edge_label(0, 2) == 7  # c-a

    def test_wildcard_vertex(self):
        builder = (
            TemplateBuilder().vertex("a", 1).vertex("w").edge("a", "w")
        )
        assert builder.has_wildcards()
        assert builder.build().label(1) == WILDCARD

    def test_repr(self):
        assert "tri" in repr(TemplateBuilder("tri"))


class TestValidation:
    def test_duplicate_vertex(self):
        with pytest.raises(TemplateError):
            TemplateBuilder().vertex("a", 1).vertex("a", 2)

    def test_edge_before_vertex(self):
        with pytest.raises(TemplateError):
            TemplateBuilder().vertex("a", 1).edge("a", "b")

    def test_self_loop(self):
        with pytest.raises(TemplateError):
            TemplateBuilder().vertex("a", 1).edge("a", "a")

    def test_duplicate_edge_either_direction(self):
        builder = TemplateBuilder().vertex("a", 1).vertex("b", 2).edge("a", "b")
        with pytest.raises(TemplateError):
            builder.edge("b", "a")

    def test_empty_build(self):
        with pytest.raises(TemplateError):
            TemplateBuilder().build()

    def test_disconnected_build(self):
        builder = TemplateBuilder().vertex("a", 1).vertex("b", 2)
        with pytest.raises(TemplateError):
            builder.build()

    def test_unknown_vertex_id(self):
        with pytest.raises(TemplateError):
            TemplateBuilder().vertex_id("nope")


class TestEndToEnd:
    def test_built_template_searches(self):
        builder = (
            TemplateBuilder("e2e")
            .vertex("a", 1).vertex("b", 2).vertex("c", 3)
            .edge("a", "b").edge("b", "c").edge("c", "a")
        )
        template = builder.build()
        graph = planted_graph(
            40, 90, template.edges(), [1, 2, 3], copies=2, num_labels=4, seed=71
        )
        result = run_pipeline(graph, template, 1, PipelineOptions(num_ranks=2))
        assert result.match_vectors
        # vertex_names lets callers decode the template side of matches
        names = builder.vertex_names()
        assert names[builder.vertex_id("a")] == "a"
