"""Parity tests for the template-library batch executor (core/batch.py).

The batch executor is pure performance work: sharing kernels, prototype
sets, the ``M*`` traversal and auxiliary pruned views across a template
library must never change an answer.  Every test here pins the batched
path to the loop-over-``run_pipeline`` baseline — identical matched
vertices, match-mapping counts and induced/non-induced motif counts — on
the same low-label-diversity shapes as the KERNEL-STRESS and NLCC-STRESS
benchmark workloads, including a graph whose vertex ids force non-trivial
old<->new remapping through :meth:`GraphCsr.induced_view`.
"""

import numpy as np
import pytest

from repro.core import (
    BatchQuery,
    PatternTemplate,
    PipelineOptions,
    TemplateLibrary,
    clique_template,
    count_motifs,
    count_motifs_sequential,
    csr_of,
    run_batch,
    run_pipeline,
)
from repro.errors import TemplateError
from repro.graph import from_edges
from repro.graph.graph import canonical_edge
from repro.graph.generators import gnm_graph, plant_pattern
from repro.runtime.trace import Tracer


def options(**overrides):
    base = dict(num_ranks=2, count_matches=True)
    base.update(overrides)
    return PipelineOptions(**base)


def sequential_answers(graph, queries, opts):
    """The per-template baseline the batch must reproduce exactly."""
    answers = {}
    for query in queries:
        result = run_pipeline(graph, query.template, query.k, opts)
        answers[query.name] = (
            result.matched_vertices(),
            result.total_match_mappings(),
            result.total_distinct_matches(),
        )
    return answers


def assert_batch_matches_sequential(graph, queries, opts):
    expected = sequential_answers(graph, queries, opts)
    batch = run_batch(graph, queries, opts)
    assert set(batch.items) == set(expected)
    for name, (vertices, mappings, distinct) in expected.items():
        item = batch[name]
        assert item.matched_vertices == vertices, name
        assert item.match_mappings == mappings, name
        assert item.distinct_matches == distinct, name
    return batch


# ---------------------------------------------------------------- shapes
def kernel_stress_graph():
    """Scaled KERNEL-STRESS shape: 4 uniform labels, long pruning cascade."""
    return gnm_graph(300, 950, num_labels=4, seed=7)


def stress_path_template(name="stress-path6"):
    """Path with cycling labels, as in the KERNEL-STRESS benchmark."""
    labels = {v: v % 4 for v in range(6)}
    edges = [(v, v + 1) for v in range(5)]
    return PatternTemplate.from_edges(edges, labels, name=name)


def stress_cycle_template(name="stress-cycle6"):
    """6-cycle with cycling labels: k > 0 stays meaningful (edges are
    removable without disconnecting, unlike the path's tree edges)."""
    labels = {v: v % 4 for v in range(6)}
    edges = [(v, (v + 1) % 6) for v in range(6)]
    return PatternTemplate.from_edges(edges, labels, name=name)


def nlcc_stress_graph():
    """Scaled NLCC-STRESS shape: two labels, multi-role candidates."""
    return gnm_graph(300, 900, num_labels=2, seed=13)


def nlcc_stress_template(name="stress-c4"):
    """The benchmark's C4 with mirrored repeated labels (0-1-1-0)."""
    labels = {0: 0, 1: 1, 2: 1, 3: 0}
    edges = [(0, 1), (1, 2), (2, 3), (3, 0)]
    return PatternTemplate.from_edges(edges, labels, name=name)


def dusty_motif_graph():
    """Single-label core + triangle dust over non-contiguous vertex ids.

    The MOTIF-BATCH shape at test scale, with every vertex id passed
    through ``v -> 3 + 7 * v`` so the CSR rows never coincide with the
    vertex ids — any bookkeeping that confuses view rows with original
    ids changes the counts.
    """
    core = gnm_graph(40, 110, num_labels=1, seed=23)
    remap = {v: 3 + 7 * v for v in core.vertices()}
    graph = from_edges(
        [(remap[u], remap[v]) for u, v in core.edges()],
        labels={remap[v]: 0 for v in core.vertices()},
    )
    clique_edges = [(u, v) for u in range(4) for v in range(u + 1, 4)]
    plant_pattern(graph, clique_edges, [0, 0, 0, 0], copies=2, seed=29)
    next_vertex = 3 + 7 * 40
    for _ in range(120):
        a, b, c = next_vertex, next_vertex + 7, next_vertex + 14
        for vertex in (a, b, c):
            graph.add_vertex(vertex, 0)
        graph.add_edge(a, b)
        graph.add_edge(b, c)
        graph.add_edge(c, a)
        next_vertex += 21
    return graph


# ------------------------------------------------------------ compilation
class TestTemplateLibrary:
    def test_rejects_empty_and_duplicate_names(self):
        with pytest.raises(TemplateError):
            TemplateLibrary([])
        template = stress_path_template()
        with pytest.raises(TemplateError):
            TemplateLibrary(
                [BatchQuery(template, 0, name="q"),
                 BatchQuery(template, 1, name="q")]
            )

    def test_rejects_negative_k_and_clamps_large_k(self):
        template = stress_path_template()
        with pytest.raises(TemplateError):
            BatchQuery(template, -1)
        query = BatchQuery(template, 99)
        assert query.k == template.max_meaningful_distance()

    def test_label_isomorphic_queries_share_a_class(self):
        first = PatternTemplate.from_edges(
            [(0, 1), (1, 2)], {0: 0, 1: 1, 2: 0}, name="cherry"
        )
        # Same labeled structure over disjoint, shuffled vertex ids.
        second = PatternTemplate.from_edges(
            [(5, 9), (9, 7)], {5: 0, 9: 1, 7: 0}, name="cherry-renamed"
        )
        library = TemplateLibrary(
            [BatchQuery(first, 0), BatchQuery(second, 0)]
        )
        assert len(library.classes) == 1
        cls = library.classes[0]
        assert cls.num_queries == 2
        # The second query's iso maps onto the representative,
        # label-preservingly.
        iso = cls.isos[1]
        for v in second.vertices():
            assert second.label(v) == cls.representative.label(iso[v])

    def test_same_structure_different_k_stays_separate(self):
        template = stress_cycle_template()
        other = stress_cycle_template(name="stress-cycle6-k1")
        queries = [BatchQuery(template, 0), BatchQuery(other, 1)]
        assert queries[1].k == 1  # a cycle edge is removable
        library = TemplateLibrary(queries)
        assert len(library.classes) == 2
        assert len(library.root_classes()) == 2

    def test_family_absorbs_exact_motifs_into_clique_root(self):
        clique = clique_template(4, labels=[0, 0, 0, 0], name="clique4")
        path = PatternTemplate.from_edges(
            [(0, 1), (1, 2), (2, 3)], {v: 0 for v in range(4)}, name="path4"
        )
        cycle = PatternTemplate.from_edges(
            [(0, 1), (1, 2), (2, 3), (3, 0)], {v: 0 for v in range(4)},
            name="cycle4",
        )
        library = TemplateLibrary(
            [BatchQuery(t, 0) for t in (clique, path, cycle)]
        )
        assert len(library.classes) == 3
        assert len(library.families) == 1
        family = library.families[0]
        assert family.root.representative.name == "clique4"
        # path4 misses 3 of the clique's 6 edges; cycle4 misses 2.
        assert family.k_eff == 3
        assert set(family.members) == {c.name for c in library.classes}
        # Only the root runs a pipeline.
        assert [c.name for c in library.root_classes()] == [family.root.name]

    def test_absorption_can_be_disabled(self):
        clique = clique_template(4, labels=[0, 0, 0, 0], name="clique4")
        path = PatternTemplate.from_edges(
            [(0, 1), (1, 2), (2, 3)], {v: 0 for v in range(4)}, name="path4"
        )
        library = TemplateLibrary(
            [BatchQuery(clique, 0), BatchQuery(path, 0)],
            absorb_families=False,
        )
        assert library.families == []
        assert len(library.root_classes()) == 2


# --------------------------------------------------------------- parity
class TestBatchedSequentialParity:
    def test_kernel_stress_shape(self):
        graph = kernel_stress_graph()
        renamed = PatternTemplate.from_edges(
            [(v + 10, v + 11) for v in range(5)],
            {v + 10: v % 4 for v in range(6)},
            name="stress-path6-shifted",
        )
        queries = [
            BatchQuery(stress_path_template(), 0),
            BatchQuery(renamed, 0),
            BatchQuery(stress_cycle_template(), 0),
            BatchQuery(stress_cycle_template("stress-cycle6-k1"), 1),
        ]
        batch = assert_batch_matches_sequential(graph, queries, options())
        # The two exact path queries collapse into one class; the two
        # cycle classes differ only in k, so the second one's M* scope
        # comes out of the shared memo.
        stats = batch.stats_document()
        assert stats["classes"] == 3
        assert stats["mstar_memo"]["hits"] >= 1

    def test_nlcc_stress_shape(self):
        graph = nlcc_stress_graph()
        queries = [
            BatchQuery(nlcc_stress_template(), 0),
            BatchQuery(nlcc_stress_template("stress-c4-k1"), 1),
        ]
        assert_batch_matches_sequential(graph, queries, options())

    def test_family_absorption_parity_on_motif_queries(self):
        graph = gnm_graph(120, 420, num_labels=1, seed=31)
        clique = clique_template(4, labels=[0, 0, 0, 0], name="clique4")
        path = PatternTemplate.from_edges(
            [(0, 1), (1, 2), (2, 3)], {v: 0 for v in range(4)}, name="path4"
        )
        star = PatternTemplate.from_edges(
            [(0, 1), (0, 2), (0, 3)], {v: 0 for v in range(4)}, name="star4"
        )
        queries = [BatchQuery(t, 0) for t in (clique, path, star)]
        batch = assert_batch_matches_sequential(graph, queries, options())
        stats = batch.stats_document()
        assert stats["root_runs"] == 1
        assert all(batch[q.name].absorbed for q in queries)

    def test_aux_views_do_not_change_answers(self):
        graph = dusty_motif_graph()
        clique = clique_template(4, labels=[0, 0, 0, 0], name="clique4")
        path = PatternTemplate.from_edges(
            [(0, 1), (1, 2), (2, 3)], {v: 0 for v in range(4)}, name="path4"
        )
        queries = [BatchQuery(clique, 0), BatchQuery(path, 0)]
        plain = run_batch(graph, queries, options(aux_views=False))
        viewed = assert_batch_matches_sequential(
            graph, queries, options(aux_views=True)
        )
        for query in queries:
            assert (
                viewed[query.name].matched_vertices
                == plain[query.name].matched_vertices
            )
            assert (
                viewed[query.name].match_mappings
                == plain[query.name].match_mappings
            )
        # The view path must actually have been exercised: the deepest
        # level prunes the dust away, later levels run on the view.
        totals = viewed.aux_view_totals()
        assert totals["built"] > 0
        assert totals["reuse"] > 0
        assert plain.aux_view_totals()["built"] == 0


class TestMotifCensusParity:
    @pytest.mark.parametrize("size", [3, 4])
    def test_batched_census_matches_sequential(self, size):
        graph = dusty_motif_graph()
        opts = PipelineOptions(num_ranks=2)
        batched = count_motifs(graph, size, opts, batched=True)
        sequential = count_motifs_sequential(graph, size, opts)
        single = count_motifs(graph, size, opts)
        for induced in (False, True):
            assert (
                batched.by_name(induced=induced)
                == sequential.by_name(induced=induced)
                == single.by_name(induced=induced)
            )

    def test_batched_census_reports_shared_work(self):
        graph = dusty_motif_graph()
        counts = count_motifs(
            graph, 4, PipelineOptions(num_ranks=2), batched=True
        )
        stats = counts.batch.stats_document()
        assert stats["queries"] == 6
        assert stats["root_runs"] == 1
        assert len(stats["families"]) == 1
        assert stats["aux_views"]["reuse"] > 0


# ------------------------------------------------- auxiliary view remap
class TestInducedViewRemapping:
    def graph(self):
        # Two triangles joined by a bridge, over sparse shuffled ids.
        edges = [
            (10, 52), (52, 97), (97, 10),
            (97, 203),
            (203, 310), (310, 401), (401, 203),
        ]
        vertices = {10, 52, 97, 203, 310, 401}
        return from_edges(edges, labels={v: 0 for v in vertices})

    def test_non_contiguous_ids_round_trip(self):
        csr = csr_of(self.graph())
        kept_ids = [97, 203, 310, 401]
        view = csr.induced_view(np.isin(csr.order, kept_ids))

        # Original ids survive; rows are renumbered densely.
        assert sorted(view.order.tolist()) == kept_ids
        assert view.num_vertices == 4
        assert view.graph.num_vertices == 4
        for row, vertex in enumerate(view.order.tolist()):
            assert view.index_of[vertex] == row

        # Vertex-induced edges: the (97, 203) bridge edge survives even
        # though 97's triangle was cut.
        view_edges = {
            canonical_edge(u, v) for u, v in view.graph.edges()
        }
        assert view_edges == {
            (97, 203), (203, 310), (203, 401), (310, 401),
        }

    def test_parent_maps_translate_rows_and_edges(self):
        csr = csr_of(self.graph())
        kept_ids = [97, 203, 310, 401]
        view = csr.induced_view(np.isin(csr.order, kept_ids))

        assert view.parent is csr
        assert (
            csr.order[view.parent_vertex_index].tolist()
            == view.order.tolist()
        )
        # Every kept directed edge maps to a parent edge position with
        # the same original endpoints.
        for pos in range(view.num_directed_edges):
            parent_pos = int(view.parent_edge_index[pos])
            assert int(csr.order[csr.src[parent_pos]]) == int(
                view.order[view.src[pos]]
            )
            assert int(csr.order[csr.indices[parent_pos]]) == int(
                view.order[view.indices[pos]]
            )
        # The mirror permutation still swaps endpoints inside the view.
        for pos in range(view.num_directed_edges):
            twin = int(view.mirror[pos])
            assert int(view.src[twin]) == int(view.indices[pos])
            assert int(view.indices[twin]) == int(view.src[pos])

    def test_mask_length_is_validated(self):
        csr = csr_of(self.graph())
        with pytest.raises(ValueError):
            csr.induced_view(np.ones(csr.num_vertices + 1, dtype=bool))


# -------------------------------------------------- fallback reporting
class TestArrayFallbackReporting:
    def case(self):
        graph = gnm_graph(80, 240, num_labels=2, seed=3)
        template = nlcc_stress_template()
        return graph, template

    def test_dict_path_reason_lands_in_result_and_stats(self):
        graph, template = self.case()
        result = run_pipeline(
            graph, template, 0,
            options(array_nlcc=False, count_matches=False),
        )
        assert result.array_fallback_reason is not None
        assert "array_nlcc" in result.array_fallback_reason
        stats = result.stats_document()
        assert (
            stats["array_fallback_reason"] == result.array_fallback_reason
        )

    def test_enumeration_optimization_stays_on_array_path(self):
        # Regression for a removed fallback reason: the enumeration
        # optimization chains dense array match tables, so it no longer
        # forces the dict path — and the answers still match a run
        # without the optimization.
        graph, template = self.case()
        optimized = run_pipeline(
            graph, template, 1, options(enumeration_optimization=True)
        )
        assert optimized.array_fallback_reason is None
        plain = run_pipeline(graph, template, 1, options())
        assert optimized.matched_vertices() == plain.matched_vertices()
        assert (
            optimized.total_match_mappings() == plain.total_match_mappings()
        )

    def test_naive_mode_stays_on_array_path(self):
        # Regression for a removed fallback reason: naive mode starts
        # each prototype from ArraySearchState.initial instead of
        # dropping the whole run to dict form.
        graph, template = self.case()
        naive = run_pipeline(
            graph, template, 0, options(use_max_candidate_set=False)
        )
        assert naive.array_fallback_reason is None
        pruned = run_pipeline(graph, template, 0, options())
        assert naive.matched_vertices() == pruned.matched_vertices()
        assert naive.total_match_mappings() == pruned.total_match_mappings()

    def test_array_path_reports_no_reason(self):
        graph, template = self.case()
        result = run_pipeline(graph, template, 0, options())
        assert result.array_fallback_reason is None
        assert result.stats_document()["array_fallback_reason"] is None

    def test_tracer_span_carries_the_reason(self):
        graph, template = self.case()
        tracer = Tracer()
        run_pipeline(
            graph, template, 0,
            options(
                array_nlcc=False, count_matches=False,
                tracer=tracer,
            ),
        )
        spans = []
        stack = list(tracer.roots)
        while stack:
            span = stack.pop()
            spans.append(span)
            stack.extend(span.children)
        fallback = [s for s in spans if s.name == "array_fallback"]
        assert len(fallback) == 1
        assert "array_nlcc" in fallback[0].attrs["reason"]

    def test_batch_stats_surface_per_class_reasons(self):
        graph, template = self.case()
        opts = options(array_nlcc=False, count_matches=False)
        batch = run_batch(graph, [BatchQuery(template, 0)], opts)
        per_class = batch.stats_document()["per_class"]
        assert len(per_class) == 1
        assert "array_nlcc" in per_class[0]["array_fallback_reason"]


class TestScheduleCostEstimates:
    def test_schedule_costs_pair_estimates_with_measured_wall(self):
        graph = kernel_stress_graph()
        queries = [
            BatchQuery(stress_path_template(), 0, name="path"),
            BatchQuery(stress_cycle_template(), 0, name="cycle"),
        ]
        batch = run_batch(graph, queries, options())
        document = batch.stats_document()
        entries = document["schedule_costs"]
        assert [e["name"] for e in entries] == document["schedule"]
        for entry in entries:
            assert entry["cost_estimate"] > 0
            assert entry["wall_seconds"] > 0

    def test_estimates_follow_lpt_order(self):
        graph = kernel_stress_graph()
        queries = [
            BatchQuery(stress_path_template(), 0, name="path"),
            BatchQuery(stress_cycle_template(), 0, name="cycle"),
        ]
        batch = run_batch(graph, queries, options())
        estimates = [
            e["cost_estimate"] for e in batch.stats_document()["schedule_costs"]
        ]
        assert estimates == sorted(estimates, reverse=True)

    def test_batch_folds_mstar_memo_counters_into_metrics(self):
        graph = kernel_stress_graph()
        # two label-isomorphic path queries share one class/root run
        queries = [
            BatchQuery(stress_path_template("p-a"), 0, name="a"),
            BatchQuery(stress_path_template("p-b"), 0, name="b"),
        ]
        opts = options()
        batch = run_batch(graph, queries, opts)
        counters = dict(opts.metrics.counters())
        memo = batch.stats_document()["mstar_memo"]
        assert counters["cache.mstar_memo.hits"] == memo["hits"]
        assert counters["cache.mstar_memo.misses"] == memo["misses"]

    def test_stats_document_embeds_metrics_snapshot(self):
        graph = kernel_stress_graph()
        queries = [BatchQuery(stress_path_template(), 0, name="path")]
        opts = options()
        batch = run_batch(graph, queries, opts)
        snapshot = batch.stats_document()["metrics"]
        assert snapshot == opts.metrics.snapshot()
        assert snapshot["counters"]["cache.mstar_memo.misses"] > 0
