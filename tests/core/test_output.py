"""Tests for the derived output forms and their on-disk formats."""

import pytest

from repro.core import PipelineOptions, run_pipeline
from repro.core.output import (
    enumerate_all_matches,
    read_match_labels,
    union_of_all_matches,
    union_per_prototype,
    write_match_enumeration,
    write_match_labels,
    write_union_subgraph,
)
from repro.core.template import PatternTemplate
from repro.errors import PipelineError
from repro.graph.generators import planted_graph
from repro.graph.isomorphism import find_subgraph_isomorphisms

EDGES = [(0, 1), (1, 2), (2, 0)]
LABELS = [1, 2, 3]


@pytest.fixture(scope="module")
def run():
    graph = planted_graph(40, 90, EDGES, LABELS, copies=2, num_labels=4, seed=12)
    template = PatternTemplate.from_edges(
        EDGES, {i: l for i, l in enumerate(LABELS)}, name="tri"
    )
    result = run_pipeline(graph, template, 1, PipelineOptions(num_ranks=2))
    return graph, result


class TestDerivedForms:
    def test_union_of_all_matches(self, run):
        graph, result = run
        vertices, edges = union_of_all_matches(result)
        assert vertices == result.matched_vertices()
        for u, v in edges:
            assert graph.has_edge(u, v)
            assert u in vertices and v in vertices

    def test_union_per_prototype(self, run):
        _graph, result = run
        per_proto = union_per_prototype(result)
        assert set(per_proto) == {p.id for p in result.prototype_set}
        all_vertices = set()
        for vertices, _edges in per_proto.values():
            all_vertices |= vertices
        assert all_vertices == result.matched_vertices()

    def test_enumeration_matches_reference(self, run):
        graph, result = run
        enumerated = {}
        for name, mapping in enumerate_all_matches(result, graph):
            enumerated.setdefault(name, set()).add(tuple(sorted(mapping.items())))
        for proto in result.prototype_set:
            reference = {
                tuple(sorted(m.items()))
                for m in find_subgraph_isomorphisms(proto.graph, graph)
            }
            assert enumerated.get(proto.name, set()) == reference

    def test_enumeration_limit(self, run):
        graph, result = run
        limited = list(enumerate_all_matches(result, graph, limit_per_prototype=1))
        by_name = {}
        for name, _mapping in limited:
            by_name[name] = by_name.get(name, 0) + 1
        assert all(count <= 1 for count in by_name.values())

    def test_enumeration_uses_stored_matches(self, run):
        graph, _ = run
        template = PatternTemplate.from_edges(
            EDGES, {i: l for i, l in enumerate(LABELS)}, name="tri"
        )
        collected = run_pipeline(
            graph, template, 0,
            PipelineOptions(num_ranks=2, collect_matches=True),
        )
        stored = list(enumerate_all_matches(collected, graph))
        fresh = list(enumerate_all_matches(run[1], graph))
        stored_keys = {(n, tuple(sorted(m.items()))) for n, m in stored}
        fresh_k0 = {
            (n, tuple(sorted(m.items()))) for n, m in fresh if n == "k0_p0"
        }
        assert stored_keys == fresh_k0


class TestWriters:
    def test_label_file_round_trip(self, run, tmp_path):
        _graph, result = run
        path = tmp_path / "labels.txt"
        written = write_match_labels(result, path)
        assert written == result.total_labels_generated()
        vectors = read_match_labels(path)
        assert vectors == {
            v: sorted(ids) for v, ids in result.match_vectors.items()
        }

    def test_union_edge_list(self, run, tmp_path):
        graph, result = run
        path = tmp_path / "union.edges"
        count = write_union_subgraph(result, path)
        _vertices, edges = union_of_all_matches(result)
        assert count == len(edges)
        content = path.read_text().splitlines()
        assert content[0].startswith("#")
        assert len(content) - 1 == count

    def test_union_single_prototype(self, run, tmp_path):
        _graph, result = run
        proto = result.prototype_set.at(0)[0]
        path = tmp_path / "one.edges"
        count = write_union_subgraph(result, path, proto_id=proto.id)
        assert count == len(result.outcome_for(proto.id).solution_edges)

    def test_union_unknown_prototype(self, run, tmp_path):
        _graph, result = run
        with pytest.raises(PipelineError):
            write_union_subgraph(result, tmp_path / "x.edges", proto_id=999)

    def test_match_enumeration_file(self, run, tmp_path):
        graph, result = run
        path = tmp_path / "matches.txt"
        count = write_match_enumeration(result, graph, path)
        lines = [
            line for line in path.read_text().splitlines()
            if not line.startswith("#")
        ]
        assert len(lines) == count
        # Every line names a prototype and lists |W0| mappings.
        for line in lines:
            name, *pairs = line.split()
            assert name.startswith("k")
            assert len(pairs) == 3
