"""Equivalence tests for the array-backed CSR state (core/arraystate.py).

The array state and vectorized fixpoints are pure performance work: every
test here pins them to the dict-of-sets baseline — identical fixed points,
identical iteration counts, identical message/visit totals, and lossless
round-trip conversion — on the same randomized workloads as
``test_kernels.py``.
"""

import numpy as np
import pytest

from repro.core import (
    ArraySearchState,
    PatternTemplate,
    PipelineOptions,
    SearchState,
    compile_role_kernel,
    csr_of,
    generate_prototypes,
    local_constraint_checking,
    max_candidate_set,
    run_pipeline,
    supports_array_fixpoint,
)
from repro.core.arraystate import MAX_ARRAY_ROLES, GraphCsr
from repro.graph.graph import Graph
from repro.graph.generators import planted_graph
from repro.runtime import Engine, MessageStats, PartitionedGraph

from test_kernels import engine_for, random_case, template_pool


def dict_snapshot(state):
    return (
        {v: frozenset(r) for v, r in state.candidates.items()},
        sorted(state.active_edge_list()),
    )


def array_snapshot(astate):
    exported = astate.to_search_state()
    return dict_snapshot(exported)


def lcc_snapshot(graph, template, **config):
    proto = generate_prototypes(template, 0).at(0)[0]
    state = SearchState.initial(graph, template)
    engine = engine_for(graph)
    iterations = local_constraint_checking(
        state, proto.graph, engine, **config
    )
    return dict_snapshot(state), iterations, engine.stats


class TestGraphCsr:
    def graph(self, seed=0):
        graph, _template = random_case(seed)
        return graph

    def test_rows_mirror_adjacency(self):
        graph = self.graph()
        csr = GraphCsr(graph)
        for i, v in enumerate(csr.order.tolist()):
            s, e = int(csr.indptr[i]), int(csr.indptr[i + 1])
            row = {csr.order[t] for t in csr.indices[s:e].tolist()}
            assert row == set(graph.neighbors(v))

    def test_mirror_is_an_involution_onto_reverse_edges(self):
        csr = GraphCsr(self.graph())
        e = np.arange(csr.num_directed_edges)
        assert (csr.mirror[csr.mirror] == e).all()
        assert (csr.src[csr.mirror] == csr.indices).all()
        assert (csr.indices[csr.mirror] == csr.src).all()

    def test_pair_code_is_canonical(self):
        csr = GraphCsr(self.graph())
        assert (csr.pair_code == csr.pair_code[csr.mirror]).all()
        lab = csr.label_codes
        lo = np.minimum(lab[csr.src], lab[csr.indices])
        hi = np.maximum(lab[csr.src], lab[csr.indices])
        assert (csr.pair_code == lo * csr.num_labels + hi).all()

    def test_label_pair_code_unknown_label(self):
        csr = GraphCsr(self.graph())
        assert csr.label_pair_code(1, 999) is None

    def test_memoized_and_invalidated_on_mutation(self):
        graph = self.graph()
        csr = csr_of(graph)
        assert csr_of(graph) is csr
        vertices = list(graph.vertices())
        graph.add_vertex(max(vertices) + 1, 1)
        rebuilt = csr_of(graph)
        assert rebuilt is not csr
        assert rebuilt.num_vertices == csr.num_vertices + 1

    def test_arrays_are_frozen(self):
        csr = GraphCsr(self.graph())
        with pytest.raises(ValueError):
            csr.indices[0] = 0


class TestRoundTripConversion:
    @pytest.mark.parametrize("seed", range(6))
    def test_initial_state_round_trips(self, seed):
        graph, template = random_case(seed)
        state = SearchState.initial(graph, template)
        astate = ArraySearchState.from_search_state(state)
        assert array_snapshot(astate) == dict_snapshot(state)

    @pytest.mark.parametrize("seed", range(6))
    def test_initial_matches_dict_initial(self, seed):
        graph, template = random_case(seed)
        state = SearchState.initial(graph, template)
        astate = ArraySearchState.initial(graph, template)
        assert array_snapshot(astate) == dict_snapshot(state)
        assert astate.active_counts() == (
            state.num_active_vertices, state.num_active_edges,
        )

    def test_partially_pruned_state_round_trips(self):
        graph, template = random_case(1)
        state = SearchState.initial(graph, template)
        victims = sorted(state.candidates)[:3]
        state.deactivate_vertex(victims[0])
        nbrs = state.active_neighbors(victims[1])
        if nbrs:
            state.deactivate_edge(victims[1], next(iter(nbrs)))
        astate = ArraySearchState.from_search_state(state)
        assert array_snapshot(astate) == dict_snapshot(state)

    def test_empty_role_set_candidate_survives(self):
        # The pooled-level union can leave candidates with empty role
        # sets; the conversion must keep them active in both directions.
        graph, template = random_case(0)
        state = SearchState.initial(graph, template)
        some = next(iter(state.candidates))
        state.candidates[some] = set()
        astate = ArraySearchState.from_search_state(state)
        assert astate.is_active(some)
        assert array_snapshot(astate) == dict_snapshot(state)

    def test_write_back_overwrites_in_place(self):
        graph, template = random_case(2)
        state = SearchState.initial(graph, template)
        astate = ArraySearchState.from_search_state(state)
        astate.deactivate_vertex(next(iter(state.candidates)))
        astate.write_back(state)
        assert dict_snapshot(state) == array_snapshot(astate)


class TestMutationParity:
    def pair(self, seed=0):
        graph, template = random_case(seed)
        state = SearchState.initial(graph, template)
        return state, ArraySearchState.from_search_state(state)

    def test_deactivate_vertex(self):
        state, astate = self.pair()
        victim = sorted(state.candidates)[1]
        state.deactivate_vertex(victim)
        astate.deactivate_vertex(victim)
        assert not astate.is_active(victim)
        assert array_snapshot(astate) == dict_snapshot(state)

    def test_deactivate_edge(self):
        state, astate = self.pair()
        u = next(v for v in sorted(state.candidates)
                 if state.active_neighbors(v))
        w = next(iter(state.active_neighbors(u)))
        state.deactivate_edge(u, w)
        astate.deactivate_edge(u, w)
        assert array_snapshot(astate) == dict_snapshot(state)

    def test_remove_role_keeps_vertex_with_other_roles(self):
        state, astate = self.pair(1)  # alt-path: candidates hold 2 roles
        vertex = next(v for v, r in sorted(state.candidates.items())
                      if len(r) >= 2)
        role = min(state.candidates[vertex])
        state.remove_role(vertex, role)
        astate.remove_role(vertex, role)
        assert array_snapshot(astate) == dict_snapshot(state)

    def test_remove_last_role_deactivates(self):
        state, astate = self.pair()
        vertex = next(v for v, r in sorted(state.candidates.items())
                      if len(r) == 1)
        role = next(iter(state.candidates[vertex]))
        state.remove_role(vertex, role)
        astate.remove_role(vertex, role)
        assert not astate.is_active(vertex)
        assert array_snapshot(astate) == dict_snapshot(state)

    def test_copy_independent(self):
        _state, astate = self.pair()
        clone = astate.copy()
        victim = int(astate.csr.order[np.nonzero(astate.vertex_active)[0][0]])
        clone.deactivate_vertex(victim)
        assert astate.is_active(victim)


class TestLccEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_fixed_point_identical(self, seed):
        graph, template = random_case(seed)
        base = lcc_snapshot(graph, template, role_kernel=False, delta=False)
        arr = lcc_snapshot(
            graph, template, role_kernel=True, delta=True, array_state=True
        )
        assert arr[:2] == base[:2]

    @pytest.mark.parametrize("seed", range(8))
    def test_full_round_mode_identical(self, seed):
        graph, template = random_case(seed)
        base = lcc_snapshot(graph, template, role_kernel=False, delta=False)
        arr = lcc_snapshot(
            graph, template, role_kernel=True, delta=False, array_state=True
        )
        assert arr[:2] == base[:2]

    @pytest.mark.parametrize("seed", range(8))
    def test_message_and_visit_parity_with_delta_kernel(self, seed):
        # The batched accounting must reproduce the dict delta path's
        # totals exactly (control/termination traffic is not compared).
        graph, template = random_case(seed)
        dlta = lcc_snapshot(graph, template, role_kernel=True, delta=True)
        arr = lcc_snapshot(
            graph, template, role_kernel=True, delta=True, array_state=True
        )
        assert arr[2].total_messages == dlta[2].total_messages
        assert arr[2].total_visits == dlta[2].total_visits

    def test_max_iterations_bound_respected(self):
        graph, template = random_case(0)
        base = lcc_snapshot(
            graph, template, role_kernel=False, delta=False, max_iterations=1
        )
        arr = lcc_snapshot(
            graph, template, role_kernel=True, delta=True,
            array_state=True, max_iterations=1,
        )
        assert arr[:2] == base[:2]
        assert arr[1] == 1

    def test_isolated_candidate_eliminated_in_round_one(self):
        template = template_pool()[0]
        graph = Graph()
        for v, lab in [(0, 1), (1, 2), (2, 3), (3, 4), (9, 3)]:
            graph.add_vertex(v, lab)
        for u, v in [(0, 1), (1, 2), (2, 0), (2, 3)]:
            graph.add_edge(u, v)
        for delta in (False, True):
            state = SearchState.initial(graph, template)
            local_constraint_checking(
                state, template.graph, engine_for(graph),
                role_kernel=True, delta=delta, array_state=True,
            )
            assert not state.is_active(9)
            assert state.is_active(2)

    def test_oversized_role_set_runs_multi_word_array_kernel(self):
        # Regression for the removed ">64 roles" dict fallback: the wide
        # template now runs the multi-word array kernel and must match the
        # dict fixpoint bit-for-bit.
        path = [(v, v + 1) for v in range(MAX_ARRAY_ROLES)]
        labels = {v: 1 for v in range(MAX_ARRAY_ROLES + 1)}
        template = PatternTemplate.from_edges(path, labels, name="wide")
        kernel = compile_role_kernel(template.graph)
        assert supports_array_fixpoint(kernel)
        graph_probe = Graph()
        graph_probe.add_vertex(0, 1)
        wide_state = ArraySearchState.initial(graph_probe, template)
        assert wide_state.n_words == 2
        graph = Graph()
        for v in range(6):
            graph.add_vertex(v, 1)
        for v in range(5):
            graph.add_edge(v, v + 1)
        base_state = SearchState.initial(graph, template)
        arr_state = SearchState.initial(graph, template)
        base_iters = local_constraint_checking(
            base_state, template.graph, engine_for(graph),
            role_kernel=True, delta=True,
        )
        arr_iters = local_constraint_checking(
            arr_state, template.graph, engine_for(graph),
            role_kernel=True, delta=True, array_state=True,
        )
        assert dict_snapshot(arr_state) == dict_snapshot(base_state)
        assert arr_iters == base_iters


class TestEdgeLabeledEquivalence:
    def background(self, seed):
        rng = np.random.default_rng(seed)
        graph = Graph()
        n = 24
        for v in range(n):
            graph.add_vertex(v, int(rng.integers(3)) + 1)
        added = 0
        while added < 60:
            u, v = int(rng.integers(n)), int(rng.integers(n))
            if u != v and not graph.has_edge(u, v):
                label = None if rng.random() < 0.5 else int(rng.integers(2)) + 6
                graph.add_edge(u, v, label)
                added += 1
        return graph

    @pytest.mark.parametrize("seed", range(6))
    def test_labeled_fixed_point_identical(self, seed):
        template = PatternTemplate.from_edges(
            [(0, 1), (1, 2), (2, 0)],
            labels={0: 1, 1: 2, 2: 3},
            edge_labels={(0, 1): 7},
            name="el",
        )
        graph = self.background(seed)
        base = lcc_snapshot(graph, template, role_kernel=False, delta=False)
        arr = lcc_snapshot(
            graph, template, role_kernel=True, delta=True, array_state=True
        )
        assert arr[:2] == base[:2]

    def test_wanted_label_absent_from_graph(self):
        # The template wants edge label 42, which no graph edge carries:
        # roles requiring it must die on both paths.
        template = PatternTemplate.from_edges(
            [(0, 1), (1, 2), (2, 0)],
            labels={0: 1, 1: 2, 2: 3},
            edge_labels={(0, 1): 42},
            name="ghost-label",
        )
        graph = self.background(0)
        base = lcc_snapshot(graph, template, role_kernel=False, delta=False)
        arr = lcc_snapshot(
            graph, template, role_kernel=True, delta=True, array_state=True
        )
        assert arr[:2] == base[:2]


class TestMaxCandidateSetEquivalence:
    def mcs(self, graph, template, **config):
        engine = engine_for(graph)
        state = max_candidate_set(graph, template, engine, **config)
        return dict_snapshot(state), engine.stats

    @pytest.mark.parametrize("seed", range(6))
    def test_mstar_identical(self, seed):
        graph, template = random_case(seed)
        base = self.mcs(graph, template, role_kernel=False, delta=False)
        dlta = self.mcs(graph, template, role_kernel=True, delta=True)
        arr = self.mcs(
            graph, template, role_kernel=True, delta=True, array_state=True
        )
        assert arr[0] == base[0]
        assert arr[1].total_messages == dlta[1].total_messages
        assert arr[1].total_visits == dlta[1].total_visits

    def test_mandatory_edges_identical(self):
        template = PatternTemplate.from_edges(
            [(0, 1), (1, 2), (2, 0), (2, 3)],
            labels={0: 1, 1: 2, 2: 3, 3: 4},
            mandatory_edges=[(2, 3)],
        )
        labels = [1, 2, 3, 4]
        graph = planted_graph(
            40, 110, template.edges(), labels, copies=2, num_labels=4, seed=3
        )
        base = self.mcs(graph, template, role_kernel=False, delta=False)
        arr = self.mcs(
            graph, template, role_kernel=True, delta=True, array_state=True
        )
        assert arr[0] == base[0]


class TestScopingParity:
    """for_prototype_search and union_with against the dict versions."""

    def base_states(self, seed=0, k=1):
        graph, template = random_case(seed)
        engine = engine_for(graph)
        state = max_candidate_set(graph, template, engine)
        protos = generate_prototypes(template, k)
        return state, ArraySearchState.from_search_state(state), protos

    @pytest.mark.parametrize("seed", range(4))
    def test_for_prototype_search_identical(self, seed):
        state, astate, protos = self.base_states(seed)
        for distance in (0, 1):
            for proto in protos.at(distance):
                scoped = state.for_prototype_search(proto)
                ascoped = astate.for_prototype_search(proto)
                assert array_snapshot(ascoped) == dict_snapshot(scoped)

    def test_readmission_identical(self):
        state, astate, protos = self.base_states(0)
        proto = protos.at(0)[0]
        pairs = [
            tuple(sorted((state.graph.label(u), state.graph.label(v))))
            for u, v in list(state.active_edge_list())[:4]
        ]
        # Drop those edges from both states, then readmit by label pair.
        for u, v in list(state.active_edge_list())[:4]:
            state.deactivate_edge(u, v)
            astate.deactivate_edge(u, v)
        scoped = state.for_prototype_search(proto, readmit_label_pairs=pairs)
        ascoped = astate.for_prototype_search(proto, readmit_label_pairs=pairs)
        assert array_snapshot(ascoped) == dict_snapshot(scoped)

    def test_union_with_identical(self):
        state, astate, protos = self.base_states(0)  # tri+tail has children
        children = protos.at(1)[:2]
        assert len(children) == 2
        dict_a = state.for_prototype_search(children[0])
        dict_b = state.for_prototype_search(children[1])
        arr_a = astate.for_prototype_search(children[0])
        arr_b = astate.for_prototype_search(children[1])
        dict_a.union_with(dict_b)
        arr_a.union_with(arr_b)
        assert array_snapshot(arr_a) == dict_snapshot(dict_a)


class TestPipelineEquivalence:
    """End-to-end: the array_state knob never changes any result field."""

    @pytest.mark.parametrize("k", [1, 2])
    @pytest.mark.parametrize("seed", [11, 23])
    def test_full_pipeline_identical(self, k, seed):
        template = template_pool()[0]
        labels = [template.label(v) for v in sorted(template.graph.vertices())]
        graph = planted_graph(
            50, 130, template.edges(), labels, copies=3, num_labels=4, seed=seed
        )
        results = [
            run_pipeline(
                graph, template, k,
                PipelineOptions(
                    num_ranks=3, count_matches=True, array_state=array_state
                ),
            )
            for array_state in (False, True)
        ]
        base, arr = results
        assert arr.match_vectors == base.match_vectors
        assert arr.candidate_set_vertices == base.candidate_set_vertices
        assert arr.candidate_set_edges == base.candidate_set_edges
        for proto in base.prototype_set:
            ours = arr.outcome_for(proto.id)
            ref = base.outcome_for(proto.id)
            assert ours.solution_vertices == ref.solution_vertices
            assert ours.solution_edges == ref.solution_edges
            assert ours.match_mappings == ref.match_mappings
            assert ours.lcc_iterations == ref.lcc_iterations
            assert ours.post_lcc_vertices == ref.post_lcc_vertices
            assert ours.post_lcc_edges == ref.post_lcc_edges
            assert ours.exact == ref.exact


class TestResultStats:
    def test_pipeline_surfaces_cache_and_post_lcc_stats(self):
        template = template_pool()[0]
        labels = [template.label(v) for v in sorted(template.graph.vertices())]
        graph = planted_graph(
            50, 130, template.edges(), labels, copies=3, num_labels=4, seed=11
        )
        result = run_pipeline(
            graph, template, 2, PipelineOptions(num_ranks=3)
        )
        assert set(result.nlcc_cache_stats) == {
            "hits", "misses", "constraints", "entries"
        }
        assert result.nlcc_cache_stats["misses"] > 0
        assert any(
            level.post_lcc_vertices > 0 for level in result.levels
        )

    def test_cache_stats_empty_without_recycling(self):
        template = template_pool()[0]
        labels = [template.label(v) for v in sorted(template.graph.vertices())]
        graph = planted_graph(
            50, 130, template.edges(), labels, copies=3, num_labels=4, seed=11
        )
        result = run_pipeline(
            graph, template, 1,
            PipelineOptions(num_ranks=3, work_recycling=False),
        )
        assert result.nlcc_cache_stats == {}
