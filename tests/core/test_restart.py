"""Failure-injection tests for pipeline checkpoint/restart."""

import pytest

from repro.core import PipelineOptions, run_pipeline
from repro.core.restart import (
    resume_pipeline,
    run_pipeline_with_checkpoints,
)
from repro.core.template import PatternTemplate
from repro.errors import CheckpointError
from repro.graph.generators import planted_graph

EDGES = [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 0)]
LABELS = [1, 2, 3, 4, 5]
K = 2


def workload(seed=33):
    graph = planted_graph(60, 140, EDGES, LABELS, copies=3, num_labels=6, seed=seed)
    template = PatternTemplate.from_edges(
        EDGES, {i: l for i, l in enumerate(LABELS)}, name="ring+chord"
    )
    return graph, template


class TestCheckpointedRun:
    def test_uninterrupted_run_matches_plain_pipeline(self, tmp_path):
        graph, template = workload()
        plain = run_pipeline(graph, template, K, PipelineOptions(num_ranks=2))
        checkpointed = run_pipeline_with_checkpoints(
            graph, template, K, tmp_path, PipelineOptions(num_ranks=2)
        )
        assert checkpointed.match_vectors == plain.match_vectors

    def test_manifest_written(self, tmp_path):
        graph, template = workload()
        run_pipeline_with_checkpoints(
            graph, template, K, tmp_path, PipelineOptions(num_ranks=2)
        )
        assert (tmp_path / "pipeline_checkpoint.json").exists()


class TestCrashAndResume:
    @pytest.mark.parametrize("crash_level", [2, 1])
    def test_resume_after_injected_failure(self, tmp_path, crash_level):
        graph, template = workload()
        plain = run_pipeline(graph, template, K, PipelineOptions(num_ranks=2))

        with pytest.raises(RuntimeError, match="injected failure"):
            run_pipeline_with_checkpoints(
                graph, template, K, tmp_path,
                PipelineOptions(num_ranks=2),
                fail_after_level=crash_level,
            )

        resumed = resume_pipeline(
            graph, template, tmp_path, PipelineOptions(num_ranks=2)
        )
        assert resumed.match_vectors == plain.match_vectors
        for proto in plain.prototype_set:
            assert (
                resumed.outcome_for(proto.id).solution_vertices
                == plain.outcome_for(proto.id).solution_vertices
            )

    def test_resume_on_smaller_deployment(self, tmp_path):
        """The §5.4 reload scenario: resume with fewer ranks."""
        graph, template = workload()
        plain = run_pipeline(graph, template, K, PipelineOptions(num_ranks=4))
        with pytest.raises(RuntimeError):
            run_pipeline_with_checkpoints(
                graph, template, K, tmp_path,
                PipelineOptions(num_ranks=4),
                fail_after_level=2,
            )
        resumed = resume_pipeline(
            graph, template, tmp_path, PipelineOptions(num_ranks=1)
        )
        assert resumed.match_vectors == plain.match_vectors

    def test_resume_wrong_template_rejected(self, tmp_path):
        graph, template = workload()
        run_pipeline_with_checkpoints(
            graph, template, K, tmp_path, PipelineOptions(num_ranks=2)
        )
        other = PatternTemplate.from_edges(
            [(0, 1)], labels={0: 1, 1: 2}, name="other"
        )
        with pytest.raises(CheckpointError):
            resume_pipeline(graph, other, tmp_path)

    def test_resume_missing_checkpoint_rejected(self, tmp_path):
        graph, template = workload()
        with pytest.raises(CheckpointError):
            resume_pipeline(graph, template, tmp_path / "nope")
