"""Tests for edge-flip template variants."""

import pytest

from repro.core import PatternTemplate, PipelineOptions
from repro.core.flips import (
    envelope_template,
    generate_flip_variants,
    run_flip_pipeline,
)
from repro.errors import TemplateError
from repro.graph import are_isomorphic, is_connected
from repro.graph.generators import planted_graph
from repro.graph.isomorphism import find_subgraph_isomorphisms


def base_template():
    # Path 1-2-3-4: flips can re-wire it into stars and other trees.
    return PatternTemplate.from_edges(
        [(0, 1), (1, 2), (2, 3)],
        labels={0: 1, 1: 2, 2: 3, 3: 4},
        name="p4",
    )


class TestVariantGeneration:
    def test_original_is_variant_zero(self):
        variants = generate_flip_variants(base_template(), flips=1)
        assert variants[0].graph == base_template().graph

    def test_all_connected_same_edge_count(self):
        template = base_template()
        for variant in generate_flip_variants(template, flips=2):
            assert is_connected(variant.graph)
            assert variant.num_edges == template.num_edges
            assert set(variant.graph.vertices()) == set(template.graph.vertices())

    def test_no_isomorphic_duplicates(self):
        variants = generate_flip_variants(base_template(), flips=1)
        for i, a in enumerate(variants):
            for b in variants[i + 1 :]:
                assert not are_isomorphic(a.graph, b.graph)

    def test_zero_flips(self):
        variants = generate_flip_variants(base_template(), flips=0)
        assert len(variants) == 1

    def test_negative_flips_rejected(self):
        with pytest.raises(TemplateError):
            generate_flip_variants(base_template(), flips=-1)

    def test_budget_enforced(self):
        with pytest.raises(TemplateError):
            generate_flip_variants(base_template(), flips=2, max_variants=2)

    def test_mandatory_edges_survive_flips(self):
        template = PatternTemplate.from_edges(
            [(0, 1), (1, 2), (2, 3)],
            labels={0: 1, 1: 2, 2: 3, 3: 4},
            mandatory_edges=[(1, 2)],
        )
        for variant in generate_flip_variants(template, flips=2):
            assert variant.graph.has_edge(1, 2)


class TestEnvelope:
    def test_envelope_covers_all_variants(self):
        template = base_template()
        variants = generate_flip_variants(template, flips=1)
        envelope = envelope_template(template, variants)
        for variant in variants:
            for u, v in variant.edges():
                assert envelope.graph.has_edge(u, v)

    def test_envelope_connected(self):
        template = base_template()
        variants = generate_flip_variants(template, flips=1)
        assert is_connected(envelope_template(template, variants).graph)


class TestFlipPipeline:
    def test_precision_and_recall_per_variant(self):
        template = base_template()
        graph = planted_graph(
            40, 80, template.edges(), [1, 2, 3, 4], copies=2,
            num_labels=5, seed=19,
        )
        result = run_flip_pipeline(
            graph, template, flips=1, options=PipelineOptions(num_ranks=2)
        )
        for variant in result.variants:
            expected = {
                v
                for m in find_subgraph_isomorphisms(variant.graph, graph)
                for v in m.values()
            }
            assert result.outcomes[variant.name].solution_vertices == expected

    def test_match_vectors_union(self):
        template = base_template()
        graph = planted_graph(
            40, 80, template.edges(), [1, 2, 3, 4], copies=2,
            num_labels=5, seed=19,
        )
        result = run_flip_pipeline(
            graph, template, flips=1, options=PipelineOptions(num_ranks=2)
        )
        expected = set()
        for outcome in result.outcomes.values():
            expected |= outcome.solution_vertices
        assert result.matched_vertices() == expected
        assert template.name in repr(result)

    def test_finds_flipped_structure_the_template_misses(self):
        """Plant a star; the path template only matches via a flip."""
        template = base_template()
        star_edges = [(1, 0), (1, 2), (1, 3)]  # star centered at vertex 1
        graph = planted_graph(
            40, 70, star_edges, [1, 2, 3, 4], copies=2, num_labels=5, seed=23,
        )
        result = run_flip_pipeline(
            graph, template, flips=1, options=PipelineOptions(num_ranks=2)
        )
        with_matches = result.variants_with_matches()
        star_variants = [
            v.name for v in result.variants
            if any(v.graph.degree(w) == 3 for w in v.graph.vertices())
        ]
        assert any(name in with_matches for name in star_variants)
