"""Tests for prototype generation — counts, links, dedup, invariants."""

import pytest

from repro.core import PatternTemplate, clique_template, generate_prototypes
from repro.core.patterns import (
    imdb1_template,
    rdt1_template,
    rmat1_template,
    wdc1_template,
    wdc3_template,
    wdc4_template,
)
from repro.errors import PrototypeError
from repro.graph import are_isomorphic, is_connected


def fig3_template():
    """Triangle + square sharing a vertex: Fig. 3(a) of the paper."""
    return wdc1_template()


class TestPaperCounts:
    """Prototype counts the paper states explicitly — hard ground truth."""

    def test_fig3_counts(self):
        counts = generate_prototypes(fig3_template(), 2).level_counts()
        assert counts == [1, 7, 12]  # "7 at distance k=1 and 12 more at k=2"

    def test_rmat1_counts(self):
        ps = generate_prototypes(rmat1_template(), 2)
        assert ps.level_counts() == [1, 7, 16]
        assert len(ps) == 24  # "a total of 24 prototypes; 16 of which at k=2"

    def test_rmat1_disconnects_beyond_k2(self):
        ps = generate_prototypes(rmat1_template(), 5)
        assert ps.max_distance == 2  # "up to k=2 (before getting disconnected)"

    def test_wdc3_counts(self):
        ps = generate_prototypes(wdc3_template(), 4)
        assert len(ps.at(3)) == 61  # "WDC-3 has 61, k=3 prototypes"
        assert len(ps) >= 100  # "100+, up to k=4, prototypes"

    def test_wdc4_6clique_counts(self):
        ps = generate_prototypes(wdc4_template(), 4)
        assert len(ps) == 1941  # "searching over 1,900 prototypes"
        assert len(ps.at(4)) == 1365  # "1,365 prototypes at distance k=4"

    def test_rdt1_counts(self):
        assert len(generate_prototypes(rdt1_template(), 1)) == 5

    def test_imdb1_counts(self):
        assert len(generate_prototypes(imdb1_template(), 2)) == 7

    def test_motif_counts(self):
        three = generate_prototypes(clique_template(3, labels=[0, 0, 0]), 1)
        assert len(three) == 2  # "three vertices can form two possible motifs"
        four = generate_prototypes(clique_template(4, labels=[0] * 4), 3)
        assert len(four) == 6  # "up to six motifs are possible for four vertices"


class TestInvariants:
    def test_all_prototypes_connected(self):
        for proto in generate_prototypes(rmat1_template(), 2):
            assert is_connected(proto.graph)

    def test_vertex_set_preserved(self):
        template = rmat1_template()
        for proto in generate_prototypes(template, 2):
            assert set(proto.graph.vertices()) == set(template.graph.vertices())

    def test_edges_subset_of_template(self):
        template = rmat1_template()
        for proto in generate_prototypes(template, 2):
            for u, v in proto.graph.edges():
                assert template.graph.has_edge(u, v)

    def test_distance_equals_removed_edges(self):
        template = rmat1_template()
        for proto in generate_prototypes(template, 2):
            assert len(proto.removed_edges()) == proto.distance
            assert proto.num_edges == template.num_edges - proto.distance

    def test_no_isomorphic_duplicates_within_level(self):
        ps = generate_prototypes(clique_template(4, labels=[0] * 4), 3)
        for level in ps.levels:
            for i, a in enumerate(level):
                for b in level[i + 1 :]:
                    assert not are_isomorphic(a.graph, b.graph)

    def test_level_zero_is_template(self):
        template = fig3_template()
        root = generate_prototypes(template, 2).at(0)[0]
        assert root.graph == template.graph


class TestLinks:
    def test_children_one_level_down(self):
        ps = generate_prototypes(fig3_template(), 2)
        for proto in ps:
            for link in proto.child_links:
                assert link.child.distance == proto.distance + 1
                assert link.parent is proto

    def test_every_deeper_prototype_has_a_parent(self):
        ps = generate_prototypes(fig3_template(), 2)
        for distance in range(1, ps.max_distance + 1):
            for proto in ps.at(distance):
                assert proto.parent_links

    def test_link_iso_maps_parent_minus_edge_onto_child(self):
        ps = generate_prototypes(clique_template(4, labels=[0] * 4), 2)
        for proto in ps:
            for link in proto.child_links:
                reduced = proto.graph.copy()
                reduced.remove_edge(*link.removed_edge)
                for u, v in reduced.edges():
                    assert link.child.graph.has_edge(link.iso[u], link.iso[v])
                assert len(set(link.iso.values())) == reduced.num_vertices

    def test_parents_children_helpers(self):
        ps = generate_prototypes(fig3_template(), 1)
        root = ps.at(0)[0]
        assert len(root.children()) == 7
        assert all(root in c.parents() for c in ps.at(1))


class TestMandatoryEdges:
    def make(self):
        return PatternTemplate.from_edges(
            [(0, 1), (1, 2), (2, 0), (2, 3)],
            labels={0: 1, 1: 2, 2: 3, 3: 4},
            mandatory_edges=[(2, 3)],
        )

    def test_mandatory_edges_never_removed(self):
        for proto in generate_prototypes(self.make(), 3):
            assert proto.graph.has_edge(2, 3)

    def test_mandatory_reduces_prototype_count(self):
        with_mand = generate_prototypes(self.make(), 2)
        free = generate_prototypes(
            PatternTemplate.from_edges(
                [(0, 1), (1, 2), (2, 0), (2, 3)],
                labels={0: 1, 1: 2, 2: 3, 3: 4},
            ),
            2,
        )
        assert len(with_mand) <= len(free)

    def test_mandatory_aware_dedup(self):
        # Symmetric square where one edge is mandatory: removals adjacent vs
        # opposite to the mandatory edge must not be merged.
        template = PatternTemplate.from_edges(
            [(0, 1), (1, 2), (2, 3), (3, 0)],
            labels={0: 0, 1: 0, 2: 0, 3: 0},
            mandatory_edges=[(0, 1)],
        )
        level1 = generate_prototypes(template, 1).at(1)
        assert len(level1) == 2  # remove an adjacent edge vs the opposite edge


class TestGuards:
    def test_negative_k_rejected(self):
        with pytest.raises(PrototypeError):
            generate_prototypes(fig3_template(), -1)

    def test_budget_enforced(self):
        with pytest.raises(PrototypeError):
            generate_prototypes(wdc4_template(), 4, max_prototypes=100)

    def test_k_clamped_to_meaningful(self):
        ps = generate_prototypes(fig3_template(), 99)
        assert ps.max_distance == 2

    def test_by_id(self):
        ps = generate_prototypes(fig3_template(), 1)
        proto = ps.at(1)[0]
        assert ps.by_id(proto.id) is proto
        with pytest.raises(PrototypeError):
            ps.by_id(10**6)

    def test_at_negative_rejected(self):
        with pytest.raises(PrototypeError):
            generate_prototypes(fig3_template(), 1).at(-1)

    def test_at_beyond_max_is_empty(self):
        assert generate_prototypes(fig3_template(), 1).at(9) == []
