"""Property-based tests for the extension modules."""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.core import PatternTemplate, PipelineOptions
from repro.core.flips import envelope_template, generate_flip_variants
from repro.core.wildcards import WILDCARD, instantiations, run_wildcard_pipeline
from repro.graph import is_connected
from repro.graph.graph import Graph
from repro.graph.isomorphism import are_isomorphic, find_subgraph_isomorphisms

SLOW = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def small_templates(draw, num_labels=3, allow_wildcards=False):
    n = draw(st.integers(3, 5))
    graph = Graph()
    for v in range(n):
        if allow_wildcards and draw(st.booleans()) and v == n - 1:
            graph.add_vertex(v, WILDCARD)
        else:
            graph.add_vertex(v, draw(st.integers(0, num_labels - 1)))
    for v in range(1, n):
        graph.add_edge(draw(st.integers(0, v - 1)), v)
    extras = [
        (u, v) for u in range(n) for v in range(u + 1, n)
        if not graph.has_edge(u, v)
    ]
    for edge in extras:
        if draw(st.booleans()):
            graph.add_edge(*edge)
    return PatternTemplate(graph, name="prop")


@st.composite
def small_graphs(draw, num_labels=3, max_vertices=16):
    n = draw(st.integers(4, max_vertices))
    graph = Graph()
    for v in range(n):
        graph.add_vertex(v, draw(st.integers(0, num_labels - 1)))
    for u in range(n):
        for v in range(u + 1, n):
            if draw(st.booleans()) and draw(st.booleans()):
                graph.add_edge(u, v)
    return graph


class TestFlipProperties:
    @SLOW
    @given(small_templates())
    def test_variants_invariants(self, template):
        variants = generate_flip_variants(template, flips=1, max_variants=500)
        assert variants[0].graph == template.graph
        for variant in variants:
            assert is_connected(variant.graph)
            assert variant.num_edges == template.num_edges
            assert set(variant.graph.vertices()) == set(template.graph.vertices())
        for i, a in enumerate(variants):
            for b in variants[i + 1 :]:
                assert not are_isomorphic(a.graph, b.graph)

    @SLOW
    @given(small_templates())
    def test_envelope_covers_family(self, template):
        variants = generate_flip_variants(template, flips=1, max_variants=500)
        envelope = envelope_template(template, variants)
        for variant in variants:
            for u, v in variant.edges():
                assert envelope.graph.has_edge(u, v)


class TestWildcardProperties:
    @SLOW
    @given(small_templates(allow_wildcards=True), small_graphs())
    def test_instantiations_sound_and_labeled(self, template, graph):
        for instantiation in instantiations(template, graph, max_instantiations=200):
            assert WILDCARD not in instantiation.label_set()
            assert set(instantiation.graph.vertices()) == set(
                template.graph.vertices()
            )
            assert sorted(instantiation.edges()) == sorted(template.edges())

    @SLOW
    @given(small_graphs(max_vertices=12))
    def test_wildcard_pipeline_exact(self, graph):
        template = PatternTemplate.from_edges(
            [(0, 1), (1, 2)], labels={0: 0, 1: WILDCARD, 2: 1}, name="w"
        )
        result = run_wildcard_pipeline(
            graph, template, 0, PipelineOptions(num_ranks=2)
        )
        expected = {}
        for instantiation in instantiations(template, graph):
            for mapping in find_subgraph_isomorphisms(instantiation.graph, graph):
                for v in mapping.values():
                    expected.setdefault(v, set()).add(instantiation.name)
        reported = {
            v: {name for name, _pid in pairs}
            for v, pairs in result.match_vectors.items()
        }
        assert reported == expected
