"""Tests for non-local constraint checking (token walks)."""

from repro.core import (
    NlccCache,
    PatternTemplate,
    SearchState,
    full_walk_constraint,
    generate_prototypes,
    local_constraint_checking,
    non_local_constraint_checking,
)
from repro.core.constraints import CYCLE_KIND, NonLocalConstraint, cycle_constraints
from repro.graph import from_edges
from repro.runtime import Engine, MessageStats, PartitionedGraph


def engine_for(graph, ranks=2):
    return Engine(PartitionedGraph(graph, ranks), MessageStats(ranks))


def triangle_template():
    return PatternTemplate.from_edges(
        [(0, 1), (1, 2), (2, 0)], labels={0: 1, 1: 2, 2: 3}
    )


def prepared_state(graph, template):
    state = SearchState.initial(graph, template)
    proto = generate_prototypes(template, 0).at(0)[0]
    local_constraint_checking(state, proto.graph, engine_for(graph))
    return state


class TestCycleChecking:
    def test_eliminates_false_cycle_candidates(self):
        # 1-2-3 path closing back to a *different* label-1 vertex: LCC keeps
        # everything, the cycle check kills it.
        template = triangle_template()
        graph = from_edges(
            [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)],
            labels={0: 1, 1: 2, 2: 3, 3: 1, 4: 2, 5: 3},
        )
        state = prepared_state(graph, template)
        assert state.num_active_vertices == 6  # LCC alone cannot prune a C6
        constraint = cycle_constraints(template.graph)[0]
        result = non_local_constraint_checking(
            state, constraint, engine_for(graph)
        )
        assert result.eliminated_roles > 0
        # After re-running LCC everything would cascade away; the direct
        # check already removed the constraint's source role everywhere.
        assert len(result.satisfied) == 0

    def test_keeps_true_cycles(self):
        template = triangle_template()
        graph = from_edges(
            [(0, 1), (1, 2), (2, 0)], labels={0: 1, 1: 2, 2: 3}
        )
        state = prepared_state(graph, template)
        constraint = cycle_constraints(template.graph)[0]
        result = non_local_constraint_checking(state, constraint, engine_for(graph))
        assert result.eliminated_roles == 0
        assert len(result.satisfied) == 1

    def test_identity_enforced_distinct_vertices(self):
        # A "triangle" 1-2-1 where the walk would need to reuse a vertex.
        template = PatternTemplate.from_edges(
            [(0, 1), (1, 2), (2, 0)], labels={0: 1, 1: 2, 2: 1}
        )
        graph = from_edges([(0, 1)], labels={0: 1, 1: 2})
        state = SearchState.initial(graph, template)
        constraint = cycle_constraints(template.graph)[0]
        result = non_local_constraint_checking(state, constraint, engine_for(graph))
        assert len(result.satisfied) == 0


class TestWorkRecycling:
    def test_cache_skips_token_initiation(self):
        template = triangle_template()
        graph = from_edges([(0, 1), (1, 2), (2, 0)], labels={0: 1, 1: 2, 2: 3})
        constraint = cycle_constraints(template.graph)[0]
        cache = NlccCache()

        state1 = prepared_state(graph, template)
        engine1 = engine_for(graph)
        first = non_local_constraint_checking(
            state1, constraint, engine1, cache=cache
        )
        assert first.recycled == set()
        messages_first = engine1.stats.phases["nlcc"].messages

        state2 = prepared_state(graph, template)
        engine2 = engine_for(graph)
        second = non_local_constraint_checking(
            state2, constraint, engine2, cache=cache
        )
        assert second.recycled == second.satisfied != set()
        assert engine2.stats.phases["nlcc"].messages < messages_first

    def test_recycle_disabled(self):
        template = triangle_template()
        graph = from_edges([(0, 1), (1, 2), (2, 0)], labels={0: 1, 1: 2, 2: 3})
        constraint = cycle_constraints(template.graph)[0]
        cache = NlccCache()
        cache.mark_satisfied(constraint.key, [0])
        state = prepared_state(graph, template)
        result = non_local_constraint_checking(
            state, constraint, engine_for(graph), cache=cache, recycle=False
        )
        assert result.recycled == set()

    def test_full_walk_never_recycled(self):
        template = triangle_template()
        graph = from_edges([(0, 1), (1, 2), (2, 0)], labels={0: 1, 1: 2, 2: 3})
        walk = full_walk_constraint(template.graph)
        cache = NlccCache()
        cache.mark_satisfied(walk.key, list(graph.vertices()))
        state = prepared_state(graph, template)
        result = non_local_constraint_checking(
            state, walk, engine_for(graph), cache=cache
        )
        assert result.recycled == set()
        assert result.completions > 0


class TestFullWalkReduction:
    def test_reduces_to_exact_solution(self):
        template = triangle_template()
        graph = from_edges(
            [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)],
            labels={0: 1, 1: 2, 2: 3, 3: 2, 4: 1},
        )
        state = prepared_state(graph, template)
        walk = full_walk_constraint(template.graph)
        non_local_constraint_checking(state, walk, engine_for(graph))
        assert set(state.active_vertices()) == {0, 1, 2}
        assert state.num_active_edges == 3

    def test_completions_count_mappings(self):
        # Unlabeled triangle: 6 mappings per triangle instance.
        template = PatternTemplate.from_edges(
            [(0, 1), (1, 2), (2, 0)], labels={0: 0, 1: 0, 2: 0}
        )
        graph = from_edges(
            [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)],
            labels={v: 0 for v in range(6)},
        )
        state = SearchState.initial(graph, template)
        walk = full_walk_constraint(template.graph)
        result = non_local_constraint_checking(state, walk, engine_for(graph))
        assert result.completions == 12  # 2 triangles x 6 automorphisms

    def test_confirmed_roles_recorded(self):
        template = triangle_template()
        graph = from_edges([(0, 1), (1, 2), (2, 0)], labels={0: 1, 1: 2, 2: 3})
        state = prepared_state(graph, template)
        walk = full_walk_constraint(template.graph)
        result = non_local_constraint_checking(state, walk, engine_for(graph))
        assert result.confirmed_roles[0] == {0}
        assert result.confirmed_roles[1] == {1}


class TestMessageAccounting:
    def test_tokens_counted_in_nlcc_phase(self):
        template = triangle_template()
        graph = from_edges([(0, 1), (1, 2), (2, 0)], labels={0: 1, 1: 2, 2: 3})
        state = prepared_state(graph, template)
        engine = engine_for(graph)
        constraint = cycle_constraints(template.graph)[0]
        non_local_constraint_checking(state, constraint, engine)
        assert engine.stats.phases["nlcc"].messages > 0

    def test_token_identity_check_prunes_walk_space(self):
        # Walks cannot revisit distinct-role vertices, so the number of
        # token messages stays bounded by simple-path growth.
        template = triangle_template()
        graph = from_edges(
            [(0, 1), (1, 2), (2, 0)], labels={0: 1, 1: 2, 2: 3}
        )
        state = prepared_state(graph, template)
        engine = engine_for(graph)
        constraint = NonLocalConstraint(CYCLE_KIND, (0, 1, 2, 0), (1, 2, 3, 1))
        non_local_constraint_checking(state, constraint, engine)
        # seed bcast (2 active nbrs) + hop2 + closing hop, single triangle
        assert engine.stats.phases["nlcc"].messages <= 12
