"""Tests for local/non-local constraint generation."""

import pytest

from repro.core import (
    PatternTemplate,
    cycle_constraints,
    full_walk_constraint,
    generate_constraints,
    is_edge_monocyclic,
    local_constraints,
    path_constraints,
    tds_constraints,
)
from repro.core.constraints import (
    CYCLE_KIND,
    FULL_WALK_KIND,
    PATH_KIND,
    TDS_KIND,
    NonLocalConstraint,
    has_duplicate_labels,
    is_tree,
)
from repro.errors import ConstraintError
from repro.graph import from_edges


def graph_of(edges, labels):
    return from_edges(edges, labels={i: l for i, l in enumerate(labels)})


TRIANGLE = graph_of([(0, 1), (1, 2), (2, 0)], [1, 2, 3])
SQUARE = graph_of([(0, 1), (1, 2), (2, 3), (3, 0)], [1, 2, 1, 3])
TREE = graph_of([(0, 1), (1, 2), (1, 3)], [1, 2, 3, 4])
SHARED_EDGE_CYCLES = graph_of(
    [(0, 1), (1, 2), (2, 3), (3, 0), (2, 4), (4, 5), (5, 3)], [0, 1, 2, 3, 4, 5]
)


class TestLocalConstraints:
    def test_one_per_vertex(self):
        constraints = local_constraints(TRIANGLE)
        assert len(constraints) == 3

    def test_neighbor_label_multiset(self):
        constraints = {c.vertex: c for c in local_constraints(SQUARE)}
        assert constraints[0].neighbor_labels == (2, 3)
        assert constraints[1].neighbor_labels == (1, 1)


class TestWalkValidity:
    def test_closed_walk_required(self):
        with pytest.raises(ConstraintError):
            NonLocalConstraint("cycle", (0, 1, 2), (1, 2, 3))

    def test_minimum_length(self):
        with pytest.raises(ConstraintError):
            NonLocalConstraint("cycle", (0, 0), (1, 1))

    def test_walk_properties(self):
        c = NonLocalConstraint("cycle", (0, 1, 2, 0), (1, 2, 3, 1))
        assert c.length == 3
        assert c.source == 0


class TestConstraintIdentity:
    def test_same_shape_same_key(self):
        a = NonLocalConstraint(CYCLE_KIND, (0, 1, 2, 0), (5, 6, 7, 5))
        b = NonLocalConstraint(CYCLE_KIND, (3, 9, 4, 3), (5, 6, 7, 5))
        assert a.key == b.key

    def test_label_mismatch_different_key(self):
        a = NonLocalConstraint(CYCLE_KIND, (0, 1, 2, 0), (5, 6, 7, 5))
        b = NonLocalConstraint(CYCLE_KIND, (0, 1, 2, 0), (5, 7, 6, 5))
        assert a.key != b.key

    def test_identity_pattern_matters(self):
        # Same labels, but one walk revisits a vertex mid-way.
        a = NonLocalConstraint(PATH_KIND, (0, 1, 2, 1, 0), (5, 6, 5, 6, 5))
        b = NonLocalConstraint(PATH_KIND, (0, 1, 0, 1, 0), (5, 6, 5, 6, 5))
        assert a.key != b.key

    def test_shared_across_prototypes(self):
        """The Fig. 3(b) property: equal cycles in different prototypes share keys."""
        from repro.core import generate_prototypes
        from repro.core.patterns import wdc1_template

        ps = generate_prototypes(wdc1_template(), 1)
        root_keys = {c.key for c in cycle_constraints(ps.at(0)[0].graph)}
        shared = 0
        for proto in ps.at(1):
            keys = {c.key for c in cycle_constraints(proto.graph)}
            shared += len(keys & root_keys)
        assert shared > 0


class TestCycleConstraints:
    def test_triangle_rooted_everywhere(self):
        constraints = cycle_constraints(TRIANGLE)
        assert len(constraints) == 3  # one per root vertex
        assert {c.source for c in constraints} == {0, 1, 2}

    def test_walks_traverse_template_edges(self):
        for c in cycle_constraints(SQUARE):
            for i in range(len(c.walk) - 1):
                assert SQUARE.has_edge(c.walk[i], c.walk[i + 1])

    def test_tree_has_none(self):
        assert cycle_constraints(TREE) == []


class TestPathConstraints:
    def test_generated_for_duplicate_labels(self):
        constraints = path_constraints(SQUARE)  # vertices 0 and 2 share label 1
        assert len(constraints) == 2  # rooted at each twin
        for c in constraints:
            assert c.walk[0] == c.walk[-1]
            assert SQUARE.label(c.walk[0]) == SQUARE.label(c.walk[len(c.walk) // 2])

    def test_none_for_distinct_labels(self):
        assert path_constraints(TRIANGLE) == []

    def test_walk_is_there_and_back(self):
        c = path_constraints(SQUARE)[0]
        half = len(c.walk) // 2
        assert list(c.walk[:half + 1])[::-1] == list(c.walk[half:])


class TestTdsConstraints:
    def test_generated_for_shared_edge_cycles(self):
        constraints = tds_constraints(SHARED_EDGE_CYCLES)
        assert constraints, "cycles sharing an edge must produce a TDS walk"
        for c in constraints:
            assert c.kind == TDS_KIND
            assert c.walk[0] == c.walk[-1]

    def test_none_for_edge_monocyclic(self):
        assert tds_constraints(TRIANGLE) == []


class TestFullWalk:
    def test_covers_every_edge(self):
        for graph in (TRIANGLE, SQUARE, TREE, SHARED_EDGE_CYCLES):
            c = full_walk_constraint(graph)
            walked = {
                tuple(sorted((c.walk[i], c.walk[i + 1])))
                for i in range(len(c.walk) - 1)
            }
            assert walked == {tuple(sorted(e)) for e in graph.edges()}

    def test_walk_uses_only_template_edges(self):
        c = full_walk_constraint(SHARED_EDGE_CYCLES)
        for i in range(len(c.walk) - 1):
            assert SHARED_EDGE_CYCLES.has_edge(c.walk[i], c.walk[i + 1])

    def test_closed(self):
        c = full_walk_constraint(SQUARE, root=2)
        assert c.walk[0] == c.walk[-1] == 2

    def test_empty_graph_rejected(self):
        from repro.graph.graph import Graph

        with pytest.raises(ConstraintError):
            full_walk_constraint(Graph())


class TestClassification:
    def test_edge_monocyclic(self):
        assert is_edge_monocyclic(TRIANGLE)
        assert is_edge_monocyclic(TREE)
        assert not is_edge_monocyclic(SHARED_EDGE_CYCLES)
        k4 = graph_of([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)], [0, 1, 2, 3])
        assert not is_edge_monocyclic(k4)

    def test_is_tree(self):
        assert is_tree(TREE)
        assert not is_tree(TRIANGLE)

    def test_duplicate_labels(self):
        assert has_duplicate_labels(SQUARE)
        assert not has_duplicate_labels(TRIANGLE)


class TestGenerateConstraints:
    def test_distinct_tree_skips_full_walk(self):
        cs = generate_constraints(TREE)
        assert cs.exact_without_full_walk
        assert cs.full_walk() is None
        assert cs.non_local == []

    def test_cyclic_gets_full_walk(self):
        cs = generate_constraints(TRIANGLE)
        assert cs.full_walk() is not None

    def test_duplicate_label_tree_gets_full_walk_and_paths(self):
        twin_tree = graph_of([(0, 1), (1, 2)], [5, 6, 5])
        cs = generate_constraints(twin_tree)
        kinds = {c.kind for c in cs.non_local}
        assert PATH_KIND in kinds
        assert FULL_WALK_KIND in kinds

    def test_force_off(self):
        cs = generate_constraints(TRIANGLE, include_full_walk=False)
        assert cs.full_walk() is None

    def test_force_on_for_tree(self):
        cs = generate_constraints(TREE, include_full_walk=True)
        assert cs.full_walk() is not None

    def test_rarest_label_root(self):
        freq = {1: 100, 2: 5, 3: 50}
        cs = generate_constraints(TRIANGLE, label_frequencies=freq)
        assert cs.full_walk().walk[0] == 1  # vertex 1 carries label 2 (rarest)
