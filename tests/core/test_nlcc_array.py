"""Array-NLCC vs dict-NLCC equivalence (the batched token frontier).

Every test runs the same walk twice — dict token visitors vs the batched
array frontier (``array_nlcc=True``) — and asserts identical observable
results: final state, checked/satisfied/recycled sets, eliminations,
completions, confirmed roles/edges, and (for full walks) the exact match
mappings.  The array path may merge token rows (``dedup_merged``) but
must never change what the walk concludes.
"""

from collections import Counter

import pytest

from repro.core import (
    NlccCache,
    PatternTemplate,
    PipelineOptions,
    SearchState,
    generate_constraints,
    local_constraint_checking,
    non_local_constraint_checking,
    run_pipeline,
)
from repro.core.kernels import compile_role_kernel
from repro.core.ordering import order_constraints
from repro.graph.generators import gnm_graph
from repro.graph.graph import Graph
from repro.runtime import Engine, MessageStats, PartitionedGraph


def engine_for(graph, ranks=4):
    return Engine(PartitionedGraph(graph, ranks), MessageStats(ranks))


def state_snapshot(state):
    return (
        {v: frozenset(r) for v, r in state.candidates.items()},
        frozenset(state.active_edge_list()),
    )


def result_digest(result):
    """Everything an NlccResult observably concludes, order-insensitive.

    ``completed_mappings`` is compared as a multiset of frozen item-sets:
    the two executions discover paths in different orders, and sorting
    frozensets is not a total order (subset comparison), so a Counter is
    the only stable equality.
    """
    return (
        frozenset(result.checked),
        frozenset(result.satisfied),
        frozenset(result.recycled),
        result.eliminated_roles,
        result.completions,
        {v: frozenset(r) for v, r in result.confirmed_roles.items()},
        frozenset(result.confirmed_edges),
        Counter(frozenset(m.items()) for m in result.completed_mappings),
    )


def run_constraints(graph, template, constraints, array_nlcc, cache=None,
                    recycle=False):
    """Fresh post-LCC state, then every constraint in order; returns
    (state snapshot, [result digests], engine stats)."""
    state = SearchState.initial(graph, template)
    engine = engine_for(graph)
    local_constraint_checking(state, template.graph, engine)
    kernel = compile_role_kernel(template.graph)
    digests = []
    for constraint in constraints:
        result = non_local_constraint_checking(
            state, constraint, engine, cache=cache, recycle=recycle,
            kernel=kernel, array_nlcc=array_nlcc,
        )
        digests.append(result_digest(result))
    return state_snapshot(state), digests


def all_constraints(graph, template):
    constraint_set = generate_constraints(template.graph, graph.label_counts())
    return order_constraints(constraint_set.non_local, graph.label_counts())


class TestWalkEquivalence:
    """Dict walk and array frontier agree constraint by constraint."""

    @pytest.mark.parametrize("seed", range(5))
    def test_c4_all_constraint_kinds(self, seed):
        # Two labels on a C4: cycle + path constraints and the full walk,
        # all three walk kinds in one sweep.
        template = PatternTemplate.from_edges(
            [(0, 1), (1, 2), (2, 3), (3, 0)],
            labels={0: 0, 1: 1, 2: 1, 3: 0},
        )
        graph = gnm_graph(60, 150, num_labels=2, seed=seed)
        constraints = all_constraints(graph, template)
        assert {c.kind for c in constraints} >= {"cycle", "path", "tds_full"}
        dict_out = run_constraints(graph, template, constraints, False)
        array_out = run_constraints(graph, template, constraints, True)
        assert array_out == dict_out

    @pytest.mark.parametrize("seed", range(5))
    def test_triangle_distinct_labels(self, seed):
        template = PatternTemplate.from_edges(
            [(0, 1), (1, 2), (2, 0)], labels={0: 1, 1: 2, 2: 3}
        )
        graph = gnm_graph(50, 140, num_labels=3, seed=seed + 10)
        constraints = all_constraints(graph, template)
        dict_out = run_constraints(graph, template, constraints, False)
        array_out = run_constraints(graph, template, constraints, True)
        assert array_out == dict_out

    def test_edge_labeled_walk(self):
        template = PatternTemplate.from_edges(
            [(0, 1), (1, 2), (2, 0)],
            labels={0: 1, 1: 2, 2: 3},
            edge_labels={(0, 1): 7},
        )
        graph = Graph()
        import numpy as np

        rng = np.random.default_rng(3)
        for v in range(40):
            graph.add_vertex(v, int(rng.integers(3)) + 1)
        added = 0
        while added < 110:
            u, v = int(rng.integers(40)), int(rng.integers(40))
            if u != v and not graph.has_edge(u, v):
                label = None if rng.random() < 0.5 else 7
                graph.add_edge(u, v, label)
                added += 1
        constraints = all_constraints(graph, template)
        dict_out = run_constraints(graph, template, constraints, False)
        array_out = run_constraints(graph, template, constraints, True)
        assert array_out == dict_out


class TestHubStormDedup:
    """The dedup fold merges swapped interior rows without changing results."""

    def storm_graph(self):
        # A clique of one label: every vertex is a candidate for every C4
        # role, every interior pair of a closed walk exists in both orders.
        graph = Graph()
        n = 10
        for v in range(n):
            graph.add_vertex(v, 0)
        for u in range(n):
            for v in range(u + 1, n):
                graph.add_edge(u, v)
        return graph

    def test_dedup_fires_and_results_match(self):
        template = PatternTemplate.from_edges(
            [(0, 1), (1, 2), (2, 3), (3, 0)],
            labels={0: 0, 1: 0, 2: 0, 3: 0},
        )
        graph = self.storm_graph()
        constraints = all_constraints(graph, template)
        dict_out = run_constraints(graph, template, constraints, False)
        array_out = run_constraints(graph, template, constraints, True)
        assert array_out == dict_out

        # Rerun one cycle constraint directly to observe the merge counter:
        # in a single-label clique the two free interior positions of the
        # length-5 cycle walk occur in both orders for every vertex pair.
        state = SearchState.initial(graph, template)
        engine = engine_for(graph)
        local_constraint_checking(state, template.graph, engine)
        kernel = compile_role_kernel(template.graph)
        cycle = next(c for c in constraints if c.kind == "cycle")
        result = non_local_constraint_checking(
            state, cycle, engine, recycle=False, kernel=kernel,
            array_nlcc=True,
        )
        assert result.dedup_merged > 0
        assert result.satisfied == result.checked


class TestCacheParity:
    """Work recycling behaves identically under both executions."""

    def template_and_graph(self):
        template = PatternTemplate.from_edges(
            [(0, 1), (1, 2), (2, 0)], labels={0: 1, 1: 2, 2: 3}
        )
        graph = gnm_graph(50, 140, num_labels=3, seed=2)
        return template, graph

    @pytest.mark.parametrize("array_nlcc", [False, True])
    def test_second_run_recycles(self, array_nlcc):
        template, graph = self.template_and_graph()
        constraints = [
            c for c in all_constraints(graph, template) if c.kind == "cycle"
        ]
        cache = NlccCache()
        _snap1, first = run_constraints(
            graph, template, constraints, array_nlcc, cache=cache,
            recycle=True,
        )
        _snap2, second = run_constraints(
            graph, template, constraints, array_nlcc, cache=cache,
            recycle=True,
        )
        # first pass recycles nothing, second recycles every satisfied
        # initiator (digest fields: checked, satisfied, recycled, ...)
        assert all(digest[2] == frozenset() for digest in first)
        assert [d[2] for d in second] == [d[1] for d in first]

    def test_hit_miss_counters_match(self):
        template, graph = self.template_and_graph()
        constraints = [
            c for c in all_constraints(graph, template) if c.kind == "cycle"
        ]
        counters = {}
        for array_nlcc in (False, True):
            cache = NlccCache()
            for _ in range(2):
                run_constraints(
                    graph, template, constraints, array_nlcc, cache=cache,
                    recycle=True,
                )
            counters[array_nlcc] = (cache.hits, cache.misses)
        assert counters[False] == counters[True]


class TestPipelineEquivalence:
    """run_pipeline with array_nlcc off vs on is observably identical."""

    @pytest.mark.parametrize("k", [0, 1])
    def test_end_to_end(self, k):
        template = PatternTemplate.from_edges(
            [(0, 1), (1, 2), (2, 3), (3, 0)],
            labels={0: 0, 1: 1, 2: 1, 3: 0},
        )
        graph = gnm_graph(80, 220, num_labels=2, seed=5)
        results = {}
        for array_nlcc in (False, True):
            options = PipelineOptions(
                num_ranks=4, count_matches=True, array_nlcc=array_nlcc
            )
            result = run_pipeline(graph, template, k, options)
            results[array_nlcc] = (
                {v: frozenset(p) for v, p in result.match_vectors.items()},
                result.total_match_mappings(),
                [
                    (o.proto_id, sorted(o.solution_vertices),
                     sorted(o.solution_edges), o.match_mappings,
                     o.distinct_matches, o.lcc_iterations,
                     o.post_lcc_vertices, o.post_lcc_edges)
                    for level in result.levels for o in level.outcomes
                ],
            )
        assert results[False] == results[True]

    def test_stats_document_counters_without_tracer(self):
        template = PatternTemplate.from_edges(
            [(0, 1), (1, 2), (2, 3), (3, 0)],
            labels={0: 0, 1: 1, 2: 1, 3: 0},
        )
        graph = gnm_graph(80, 220, num_labels=2, seed=5)
        docs = {}
        for array_nlcc in (False, True):
            options = PipelineOptions(
                num_ranks=4, count_matches=True, array_nlcc=array_nlcc
            )
            doc = run_pipeline(graph, template, 1, options).stats_document()
            docs[array_nlcc] = doc["nlcc"]
        for nlcc in docs.values():
            assert nlcc["tokens_launched"] > 0
            assert nlcc["completions"] > 0
        # everything except the array-only dedup counter agrees
        for field in ("constraints_checked", "roles_eliminated", "recycled",
                      "tokens_launched", "completions"):
            assert docs[False][field] == docs[True][field]
        assert docs[False]["dedup_merged"] == 0
