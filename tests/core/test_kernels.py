"""Equivalence tests for the bitmask role kernels (core/kernels.py).

The kernel and delta paths are pure performance work: every test here pins
them to the baseline set-based implementations — identical fixed points,
identical iteration counts, and (for the non-delta kernel) identical
message counts.
"""

import pytest

from repro.core import (
    PatternTemplate,
    PipelineOptions,
    SearchState,
    compile_role_kernel,
    generate_prototypes,
    local_constraint_checking,
    max_candidate_set,
    run_pipeline,
)
from repro.graph.graph import Graph
from repro.graph.generators import planted_graph
from repro.runtime import Engine, MessageStats, PartitionedGraph


def engine_for(graph, ranks=3):
    return Engine(PartitionedGraph(graph, ranks), MessageStats(ranks))


#: template shapes with label collisions so vertices hold several roles
def template_pool():
    return [
        PatternTemplate.from_edges(
            [(0, 1), (1, 2), (2, 0), (2, 3)],
            labels={0: 1, 1: 2, 2: 3, 3: 4},
            name="tri+tail",
        ),
        PatternTemplate.from_edges(
            [(0, 1), (1, 2), (2, 3)],
            labels={0: 1, 1: 2, 2: 1, 3: 2},
            name="alt-path",  # repeated labels: candidates hold 2 roles
        ),
        PatternTemplate.from_edges(
            [(0, 1), (1, 2), (2, 3), (3, 0)],
            labels={0: 1, 1: 1, 2: 2, 3: 2},
            name="square",
        ),
        PatternTemplate.from_edges(
            [(0, 1), (0, 2), (0, 3), (1, 2)],
            labels={0: 1, 1: 2, 2: 2, 3: 3},
            name="fan",
        ),
    ]


def random_case(seed):
    template = template_pool()[seed % 4]
    labels = [template.label(v) for v in sorted(template.graph.vertices())]
    graph = planted_graph(
        40, 110, template.edges(), labels, copies=2, num_labels=4, seed=seed
    )
    return graph, template


def lcc_snapshot(graph, template, role_kernel, delta):
    proto = generate_prototypes(template, 0).at(0)[0]
    state = SearchState.initial(graph, template)
    engine = engine_for(graph)
    iterations = local_constraint_checking(
        state, proto.graph, engine, role_kernel=role_kernel, delta=delta
    )
    return (
        dict(state.candidates),
        sorted(state.active_edge_list()),
        iterations,
        engine.stats,
    )


class TestRoleKernelTables:
    def template(self):
        return template_pool()[0]

    def test_role_bits_are_a_bijection(self):
        kernel = compile_role_kernel(self.template().graph)
        bits = set(kernel.role_bit.values())
        assert len(bits) == len(kernel.roles)
        assert all(bit & (bit - 1) == 0 for bit in bits)  # powers of two
        for role, bit in kernel.role_bit.items():
            assert kernel.bit_role[bit] == role

    def test_mask_roundtrip(self):
        kernel = compile_role_kernel(self.template().graph)
        for subset in ({0}, {1, 3}, {0, 1, 2, 3}, set()):
            assert kernel.roles_of(kernel.mask_of(subset)) == subset
        assert kernel.mask_of(kernel.roles) == kernel.full_mask

    def test_neighbor_masks_mirror_template_adjacency(self):
        template = self.template()
        kernel = compile_role_kernel(template.graph)
        for role in kernel.roles:
            mask = kernel.neighbor_masks[kernel.role_bit[role]]
            assert kernel.roles_of(mask) == set(template.graph.neighbors(role))

    def test_label_role_masks(self):
        template = template_pool()[1]  # labels 1,2,1,2
        kernel = compile_role_kernel(template.graph)
        assert kernel.roles_of(kernel.label_role_masks[1]) == {0, 2}
        assert kernel.roles_of(kernel.label_role_masks[2]) == {1, 3}

    def test_mandatory_masks(self):
        template = self.template()
        kernel = compile_role_kernel(template.graph)
        masks = kernel.mandatory_masks([(2, 3)])
        assert kernel.roles_of(masks[kernel.role_bit[2]]) == {3}
        assert kernel.roles_of(masks[kernel.role_bit[3]]) == {2}
        assert masks[kernel.role_bit[0]] == 0

    def test_edge_labeled_tables_split_by_label(self):
        template = PatternTemplate.from_edges(
            [(0, 1), (1, 2), (2, 0)],
            labels={0: 1, 1: 2, 2: 3},
            edge_labels={(0, 1): 7},
        )
        kernel = compile_role_kernel(template.graph)
        assert kernel.edge_labeled
        bit0 = kernel.role_bit[0]
        assert kernel.roles_of(kernel.any_neighbor_masks[bit0]) == {2}
        assert kernel.roles_of(kernel.labeled_neighbor_masks[bit0][7]) == {1}


class TestLccEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_fixed_point_identical(self, seed):
        graph, template = random_case(seed)
        base = lcc_snapshot(graph, template, role_kernel=False, delta=False)
        kern = lcc_snapshot(graph, template, role_kernel=True, delta=False)
        dlta = lcc_snapshot(graph, template, role_kernel=True, delta=True)
        # Same candidates, same active edges, same number of rounds.
        assert kern[:3] == base[:3]
        assert dlta[:3] == base[:3]

    @pytest.mark.parametrize("seed", range(8))
    def test_message_counts(self, seed):
        graph, template = random_case(seed)
        base = lcc_snapshot(graph, template, role_kernel=False, delta=False)
        kern = lcc_snapshot(graph, template, role_kernel=True, delta=False)
        dlta = lcc_snapshot(graph, template, role_kernel=True, delta=True)
        # The non-delta kernel replays the baseline broadcast schedule.
        assert kern[3].total_messages == base[3].total_messages
        # Delta only ever *skips* re-broadcasts.
        assert dlta[3].total_messages <= base[3].total_messages

    def test_isolated_candidate_eliminated_in_round_one(self):
        # A right-labeled vertex with no active edges receives no witnesses;
        # the delta path must still evaluate (and kill) it in round 1.
        template = template_pool()[0]
        graph = Graph()
        for v, lab in [(0, 1), (1, 2), (2, 3), (3, 4), (9, 3)]:
            graph.add_vertex(v, lab)
        for u, v in [(0, 1), (1, 2), (2, 0), (2, 3)]:
            graph.add_edge(u, v)
        for delta in (False, True):
            state = SearchState.initial(graph, template)
            local_constraint_checking(
                state, template.graph, engine_for(graph),
                role_kernel=True, delta=delta,
            )
            assert not state.is_active(9)
            assert state.is_active(2)


class TestEdgeLabeledEquivalence:
    def background(self, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        graph = Graph()
        n = 24
        for v in range(n):
            graph.add_vertex(v, int(rng.integers(3)) + 1)
        added = 0
        while added < 60:
            u, v = int(rng.integers(n)), int(rng.integers(n))
            if u != v and not graph.has_edge(u, v):
                label = None if rng.random() < 0.5 else int(rng.integers(2)) + 6
                graph.add_edge(u, v, label)
                added += 1
        return graph

    @pytest.mark.parametrize("seed", range(6))
    def test_labeled_fixed_point_identical(self, seed):
        template = PatternTemplate.from_edges(
            [(0, 1), (1, 2), (2, 0)],
            labels={0: 1, 1: 2, 2: 3},
            edge_labels={(0, 1): 7},
            name="el",
        )
        graph = self.background(seed)
        base = lcc_snapshot(graph, template, role_kernel=False, delta=False)
        kern = lcc_snapshot(graph, template, role_kernel=True, delta=False)
        dlta = lcc_snapshot(graph, template, role_kernel=True, delta=True)
        assert kern[:3] == base[:3]
        assert dlta[:3] == base[:3]
        assert kern[3].total_messages == base[3].total_messages


class TestMaxCandidateSetEquivalence:
    def mcs_snapshot(self, graph, template, role_kernel, delta):
        engine = engine_for(graph)
        state = max_candidate_set(
            graph, template, engine, role_kernel=role_kernel, delta=delta
        )
        return (
            dict(state.candidates),
            sorted(state.active_edge_list()),
            engine.stats,
        )

    @pytest.mark.parametrize("seed", range(6))
    def test_mstar_identical(self, seed):
        graph, template = random_case(seed)
        base = self.mcs_snapshot(graph, template, role_kernel=False, delta=False)
        kern = self.mcs_snapshot(graph, template, role_kernel=True, delta=False)
        dlta = self.mcs_snapshot(graph, template, role_kernel=True, delta=True)
        assert kern[:2] == base[:2]
        assert dlta[:2] == base[:2]
        assert kern[2].total_messages == base[2].total_messages
        assert dlta[2].total_messages <= base[2].total_messages

    def test_mandatory_edges_identical(self):
        template = PatternTemplate.from_edges(
            [(0, 1), (1, 2), (2, 0), (2, 3)],
            labels={0: 1, 1: 2, 2: 3, 3: 4},
            mandatory_edges=[(2, 3)],
        )
        labels = [1, 2, 3, 4]
        graph = planted_graph(
            40, 110, template.edges(), labels, copies=2, num_labels=4, seed=3
        )
        base = self.mcs_snapshot(graph, template, role_kernel=False, delta=False)
        for delta in (False, True):
            other = self.mcs_snapshot(graph, template, role_kernel=True, delta=delta)
            assert other[:2] == base[:2]


class TestPipelineEquivalence:
    """End-to-end: kernel and delta knobs never change any result field."""

    VARIANTS = [
        dict(role_kernel=False, delta_lcc=False),
        dict(role_kernel=True, delta_lcc=False),
        dict(role_kernel=True, delta_lcc=True),
    ]

    @pytest.mark.parametrize("k", [1, 2])
    @pytest.mark.parametrize("seed", [11, 23])
    def test_full_pipeline_identical(self, k, seed):
        template = template_pool()[0]  # triangle -> NLCC cycle constraints
        labels = [template.label(v) for v in sorted(template.graph.vertices())]
        graph = planted_graph(
            50, 130, template.edges(), labels, copies=3, num_labels=4, seed=seed
        )
        results = [
            run_pipeline(
                graph, template, k,
                PipelineOptions(num_ranks=3, count_matches=True, **variant),
            )
            for variant in self.VARIANTS
        ]
        base = results[0]
        for result in results[1:]:
            assert result.match_vectors == base.match_vectors
            for proto in base.prototype_set:
                ours = result.outcome_for(proto.id)
                ref = base.outcome_for(proto.id)
                assert ours.solution_vertices == ref.solution_vertices
                assert ours.solution_edges == ref.solution_edges
                assert ours.match_mappings == ref.match_mappings
                assert ours.lcc_iterations == ref.lcc_iterations
                assert ours.exact == ref.exact
