"""Parity properties for the vectorized match enumerator and wide masks.

``enumerate_matches_array`` is pure performance work: on every input the
mapping *set* it produces must be bit-exact with the dict backtracker
(:func:`enumerate_matches`), including edge-labeled and wildcard pattern
edges — only the enumeration order may differ.  Likewise the multi-word
``(n, n_words)`` role-mask layout must reach the same fixed point as the
single-word fast path on the same seeds.  These tests pin both contracts
on the randomized workloads of ``test_kernels.py``.
"""

import numpy as np
import pytest

from repro.core import (
    ArraySearchState,
    PatternTemplate,
    SearchState,
    compile_role_kernel,
    generate_prototypes,
    local_constraint_checking,
    max_candidate_set,
)
from repro.core.arraystate import array_kernel_fixpoint
from repro.core.enumeration import (
    enumerate_matches,
    enumerate_matches_array,
)
from repro.core.kernels import cached_role_kernel
from repro.graph.graph import Graph

from test_kernels import engine_for, random_case


def mapping_set(mappings):
    return {frozenset(m.items()) for m in mappings}


def verification_state(seed, proto_index, k=1):
    """A (prototype, pruned dict state) pair as search.py verifies it."""
    graph, template = random_case(seed)
    engine = engine_for(graph)
    state = max_candidate_set(graph, template, engine)
    protos = generate_prototypes(template, k).all()
    proto = protos[proto_index % len(protos)]
    scoped = state.for_prototype_search(proto)
    local_constraint_checking(
        scoped, proto.graph, engine_for(graph), array_state=True
    )
    return proto, scoped


def astate_for(proto, state, min_words=1):
    kernel = cached_role_kernel(proto.graph)
    return ArraySearchState.from_search_state(
        state, roles=kernel.roles, min_words=min_words
    )


class TestEnumerationParity:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("proto_index", range(3))
    def test_mapping_sets_identical(self, seed, proto_index):
        proto, state = verification_state(seed, proto_index)
        expected = mapping_set(enumerate_matches(proto, state))
        match_set = enumerate_matches_array(proto, astate_for(proto, state))
        assert mapping_set(match_set.mappings()) == expected
        assert len(match_set) == len(expected)

    @pytest.mark.parametrize("seed", range(8))
    def test_wide_masks_enumerate_identically(self, seed):
        # Forcing the (n, 2)-word layout on a <=64-role prototype must
        # not change the mapping set: the wide branches of the frontier
        # walk see the same candidacies through a different addressing.
        proto, state = verification_state(seed, proto_index=0)
        expected = mapping_set(enumerate_matches(proto, state))
        astate = astate_for(proto, state, min_words=2)
        assert astate.n_words == 2
        match_set = enumerate_matches_array(proto, astate)
        assert mapping_set(match_set.mappings()) == expected

    def test_limit_truncates_within_the_full_set(self):
        proto, state = verification_state(0, proto_index=0)
        full = mapping_set(enumerate_matches(proto, state))
        if len(full) < 2:
            pytest.skip("seed produced too few matches to truncate")
        limited = enumerate_matches_array(
            proto, astate_for(proto, state), limit=1
        )
        assert len(limited) == 1
        assert mapping_set(limited.mappings()) <= full

    def test_empty_scope_enumerates_nothing(self):
        proto, state = verification_state(1, proto_index=0)
        for vertex in list(state.candidates):
            state.deactivate_vertex(vertex)
        assert list(enumerate_matches(proto, state)) == []
        assert len(enumerate_matches_array(proto, astate_for(proto, state))) == 0


class TestEdgeLabelEnumerationParity:
    def background(self, seed):
        """Random 3-label graph; half the edges carry an edge label."""
        rng = np.random.default_rng(seed)
        graph = Graph()
        n = 24
        for v in range(n):
            graph.add_vertex(v, int(rng.integers(3)) + 1)
        added = 0
        while added < 70:
            u, v = int(rng.integers(n)), int(rng.integers(n))
            if u != v and not graph.has_edge(u, v):
                label = None if rng.random() < 0.5 else int(rng.integers(2)) + 6
                graph.add_edge(u, v, label)
                added += 1
        return graph

    def template(self, wanted=7):
        # one labeled edge, two wildcard (None) edges
        return PatternTemplate.from_edges(
            [(0, 1), (1, 2), (2, 0)],
            labels={0: 1, 1: 2, 2: 3},
            edge_labels={(0, 1): wanted},
            name="el-parity",
        )

    def pruned(self, graph, template):
        proto = generate_prototypes(template, 0).at(0)[0]
        state = SearchState.initial(graph, template)
        local_constraint_checking(
            state, proto.graph, engine_for(graph), array_state=True
        )
        return proto, state

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("min_words", [1, 2])
    def test_labeled_and_wildcard_edges_identical(self, seed, min_words):
        graph = self.background(seed)
        proto, state = self.pruned(graph, self.template())
        expected = mapping_set(enumerate_matches(proto, state))
        match_set = enumerate_matches_array(
            proto, astate_for(proto, state, min_words=min_words)
        )
        assert mapping_set(match_set.mappings()) == expected

    def test_ghost_edge_label_yields_no_matches(self):
        # The template wants edge label 42, which no graph edge carries:
        # both enumerators must agree on the empty set.
        graph = self.background(0)
        proto, state = self.pruned(graph, self.template(wanted=42))
        assert list(enumerate_matches(proto, state)) == []
        assert len(enumerate_matches_array(proto, astate_for(proto, state))) == 0


class TestWideFixpointParity:
    @pytest.mark.parametrize("seed", range(8))
    def test_multi_word_fixpoint_matches_single_word(self, seed):
        # Same seeds as the enumeration parity suite: forcing the wide
        # layout must not change the LCC fixed point or round count.
        graph, template = random_case(seed)
        kernel = compile_role_kernel(template.graph)
        snapshots = []
        for min_words in (1, 2):
            astate = ArraySearchState.initial(
                graph, template, min_words=min_words
            )
            assert astate.n_words == min_words
            iterations = array_kernel_fixpoint(
                astate, kernel, engine_for(graph)
            )
            exported = astate.to_search_state()
            snapshots.append((
                iterations,
                {v: frozenset(r) for v, r in exported.candidates.items()},
                sorted(exported.active_edge_list()),
            ))
        assert snapshots[0] == snapshots[1]
