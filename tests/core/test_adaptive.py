"""Tests for trace-driven adaptive execution (dense-round switch, measured
constraint reordering).

The correctness contract is absolute: adaptive execution may only change
*scheduling* (which rounds run dense, which order constraints check in),
never the fixed point or the match set.
"""

from functools import lru_cache

import pytest

from repro.core import PipelineOptions, run_pipeline
from repro.core.constraints import CYCLE_KIND, PATH_KIND, NonLocalConstraint
from repro.core.ordering import order_constraints, reorder_measured
from repro.core.template import PatternTemplate
from repro.graph import Graph
from repro.graph.generators.random_labeled import gnm_graph
from repro.runtime.metrics import ConstraintCostModel


@lru_cache(maxsize=None)
def kernel_shape_workload():
    """A scaled-down KERNEL-STRESS: low label diversity, path-8 template."""
    graph = gnm_graph(3000, 10000, num_labels=4, seed=7)
    labels = {v: v % 4 for v in range(8)}
    template = PatternTemplate.from_edges(
        [(v, v + 1) for v in range(7)], labels, name="adaptive-path8"
    )
    return graph, template


@lru_cache(maxsize=None)
def nlcc_shape_workload():
    """A scaled-down NLCC-STRESS: two labels, hubs, mirrored-label C4."""
    graph = gnm_graph(800, 2400, num_labels=2, seed=13)
    for hub, degree in ((5, 60), (11, 60)):
        for v in range(degree):
            other = (hub + 7 + 3 * v) % 800
            if other != hub and not graph.has_edge(hub, other):
                graph.add_edge(hub, other)
    template = PatternTemplate.from_edges(
        [(0, 1), (1, 2), (2, 3), (3, 0)], {0: 0, 1: 1, 2: 1, 3: 0},
        name="adaptive-c4",
    )
    return graph, template


def cascade_workload(paths=500, cycles=50):
    """Open label-paths 0-1-2-3 plus true 4-cycles, distinct-label C4.

    Round 1 kills both endpoints of every path simultaneously; the whole
    elimination wave flows through the fixpoint's witness-loss queue, so
    the round-2 worklist covers ~5/6 of the surviving scope (1200
    vertices, above the adaptive floor) — the workload the dense-round
    switch exists for.  The planted cycles keep the match set non-empty.
    """
    graph = Graph()
    next_vertex = 0
    for closed in (False,) * paths + (True,) * cycles:
        block = list(range(next_vertex, next_vertex + 4))
        for offset, vertex in enumerate(block):
            graph.add_vertex(vertex, offset)
        edges = list(zip(block, block[1:]))
        if closed:
            edges.append((block[-1], block[0]))
        for u, v in edges:
            graph.add_edge(u, v)
        next_vertex += 4
    template = PatternTemplate.from_edges(
        [(0, 1), (1, 2), (2, 3), (3, 0)], {0: 0, 1: 1, 2: 2, 3: 3},
        name="adaptive-cascade",
    )
    return graph, template


def run_with(graph, template, k, adaptive):
    options = PipelineOptions(
        num_ranks=2, count_matches=True, adaptive=adaptive
    )
    result = run_pipeline(graph, template, k, options)
    return result, dict(options.metrics.counters())


class TestAdaptiveDenseSwitch:
    def test_kernel_shape_match_set_invariant(self):
        graph, template = kernel_shape_workload()
        baseline, _ = run_with(graph, template, 0, adaptive=False)
        adaptive, _ = run_with(graph, template, 0, adaptive=True)
        assert adaptive.match_vectors == baseline.match_vectors
        assert adaptive.total_match_mappings() == baseline.total_match_mappings()

    def test_nlcc_shape_match_set_invariant(self):
        graph, template = nlcc_shape_workload()
        baseline, _ = run_with(graph, template, 0, adaptive=False)
        adaptive, _ = run_with(graph, template, 0, adaptive=True)
        assert adaptive.match_vectors == baseline.match_vectors
        assert adaptive.total_match_mappings() == baseline.total_match_mappings()

    def test_cascade_switch_fires_and_changes_round_mix(self):
        graph, template = cascade_workload()
        baseline, base_counters = run_with(graph, template, 0, adaptive=False)
        adaptive, adapt_counters = run_with(graph, template, 0, adaptive=True)

        # identical results ...
        assert adaptive.match_vectors == baseline.match_vectors
        assert adaptive.total_match_mappings() == baseline.total_match_mappings()
        assert adaptive.total_match_mappings() > 0

        # ... while the round mix measurably changes
        assert base_counters["fixpoint.rounds_adaptive_dense"] == 0.0
        assert adapt_counters["fixpoint.rounds_adaptive_dense"] >= 1.0

        def dense_fraction(counters):
            dense = counters["fixpoint.rounds_dense"]
            sparse = counters["fixpoint.rounds_sparse"]
            return dense / (dense + sparse)

        assert dense_fraction(adapt_counters) > dense_fraction(base_counters)

    def test_adaptive_is_deterministic(self):
        graph, template = cascade_workload(paths=300, cycles=30)
        first, first_counters = run_with(graph, template, 0, adaptive=True)
        second, second_counters = run_with(graph, template, 0, adaptive=True)
        assert first.match_vectors == second.match_vectors
        assert first_counters == second_counters


class TestMeasuredConstraintReordering:
    def _constraints(self):
        short_cycle = NonLocalConstraint(
            CYCLE_KIND, (0, 1, 2, 0), (1, 2, 3, 1)
        )
        long_cycle = NonLocalConstraint(
            CYCLE_KIND, (0, 1, 2, 3, 0), (1, 2, 3, 4, 1)
        )
        path = NonLocalConstraint(
            PATH_KIND, (0, 1, 2, 1, 0), (1, 2, 1, 2, 1)
        )
        return short_cycle, long_cycle, path

    def test_empty_model_keeps_static_order(self):
        short_cycle, long_cycle, path = self._constraints()
        static = [short_cycle, long_cycle, path]
        assert reorder_measured(static, ConstraintCostModel()) == static
        assert reorder_measured(static, None) == static

    def test_sub_resolution_measurements_keep_static_order(self):
        short_cycle, long_cycle, path = self._constraints()
        model = ConstraintCostModel()
        model.observe(short_cycle.key, 0.001)
        model.observe(long_cycle.key, 0.002)
        static = [short_cycle, long_cycle, path]
        assert reorder_measured(static, model) == static

    def test_measured_expensive_constraint_moves_back_within_kind(self):
        short_cycle, long_cycle, path = self._constraints()
        model = ConstraintCostModel()
        model.observe(short_cycle.key, 8.0)   # measured pricey
        model.observe(long_cycle.key, 0.1)    # measured cheap
        ordered = reorder_measured([short_cycle, long_cycle, path], model)
        # cycles still run before paths, but swap between themselves
        assert ordered == [long_cycle, short_cycle, path]

    def test_kind_priority_never_overridden(self):
        short_cycle, long_cycle, path = self._constraints()
        model = ConstraintCostModel()
        model.observe(short_cycle.key, 100.0)
        model.observe(long_cycle.key, 100.0)
        ordered = reorder_measured([short_cycle, long_cycle, path], model)
        assert ordered[-1] is path or ordered[-1].kind == PATH_KIND

    def test_order_constraints_consumes_measured_buckets(self):
        short_cycle, long_cycle, path = self._constraints()
        model = ConstraintCostModel()
        model.observe(short_cycle.key, 8.0)
        model.observe(long_cycle.key, 0.1)
        freq = {1: 5, 2: 5, 3: 5, 4: 5}
        ordered = order_constraints(
            [short_cycle, long_cycle, path], freq, optimize=True,
            measured=model,
        )
        assert ordered[0].length == long_cycle.length
        assert ordered[0].kind == CYCLE_KIND
