"""Tests for PatternTemplate and template factories."""

import pytest

from repro.core import PatternTemplate, clique_template, cycle_template, path_template
from repro.errors import TemplateError
from repro.graph import from_edges


class TestValidation:
    def test_empty_rejected(self):
        from repro.graph.graph import Graph

        with pytest.raises(TemplateError):
            PatternTemplate(Graph())

    def test_disconnected_rejected(self):
        g = from_edges([(0, 1), (2, 3)])
        with pytest.raises(TemplateError):
            PatternTemplate(g)

    def test_mandatory_edge_must_exist(self):
        g = from_edges([(0, 1), (1, 2)])
        with pytest.raises(TemplateError):
            PatternTemplate(g, mandatory_edges=[(0, 2)])

    def test_from_edges_requires_labeled_vertices(self):
        with pytest.raises(TemplateError):
            PatternTemplate.from_edges([(0, 1)], labels={0: 1})

    def test_template_copies_graph(self):
        g = from_edges([(0, 1), (1, 2)])
        t = PatternTemplate(g)
        g.remove_edge(0, 1)
        assert t.graph.has_edge(0, 1)


class TestAccessors:
    def make(self):
        return PatternTemplate.from_edges(
            [(0, 1), (1, 2), (2, 0)],
            labels={0: 5, 1: 5, 2: 7},
            mandatory_edges=[(0, 1)],
            name="t",
        )

    def test_counts(self):
        t = self.make()
        assert t.num_vertices == 3
        assert t.num_edges == 3

    def test_edges_sorted_canonical(self):
        assert self.make().edges() == [(0, 1), (0, 2), (1, 2)]

    def test_optional_edges_exclude_mandatory(self):
        t = self.make()
        assert (0, 1) not in t.optional_edges()
        assert len(t.optional_edges()) == 2

    def test_mandatory_edges_canonicalized(self):
        t = PatternTemplate.from_edges(
            [(0, 1)], labels={0: 0, 1: 0}, mandatory_edges=[(1, 0)]
        )
        assert (0, 1) in t.mandatory_edges

    def test_duplicate_labels_detected(self):
        assert self.make().has_duplicate_labels()
        distinct = PatternTemplate.from_edges(
            [(0, 1)], labels={0: 1, 1: 2}
        )
        assert not distinct.has_duplicate_labels()

    def test_label_set(self):
        assert self.make().label_set() == {5, 7}

    def test_max_meaningful_distance(self):
        assert self.make().max_meaningful_distance() == 1  # 3 edges, 3 vertices
        tree = PatternTemplate.from_edges([(0, 1), (1, 2)], labels={0: 0, 1: 1, 2: 2})
        assert tree.max_meaningful_distance() == 0


class TestFactories:
    def test_clique(self):
        t = clique_template(4)
        assert t.num_edges == 6
        assert t.label_set() == {0, 1, 2, 3}

    def test_clique_custom_labels(self):
        t = clique_template(3, labels=[9, 9, 9])
        assert t.label_set() == {9}

    def test_clique_too_small(self):
        with pytest.raises(TemplateError):
            clique_template(1)

    def test_clique_label_count_mismatch(self):
        with pytest.raises(TemplateError):
            clique_template(3, labels=[1, 2])

    def test_path(self):
        t = path_template([3, 4, 5])
        assert t.num_edges == 2
        assert t.label(1) == 4

    def test_path_too_short(self):
        with pytest.raises(TemplateError):
            path_template([1])

    def test_cycle(self):
        t = cycle_template([1, 2, 3, 4])
        assert t.num_edges == 4
        assert t.graph.has_edge(3, 0)

    def test_cycle_too_short(self):
        with pytest.raises(TemplateError):
            cycle_template([1, 2])
