"""Property-based tests (hypothesis) of the core guarantees.

The central property is the paper's headline claim: for *any* connected
labeled template, *any* background graph, and *any* edit-distance, the
pipeline's match vectors equal brute-force ground truth — 100% precision
and 100% recall.
"""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.core import (
    PatternTemplate,
    PipelineOptions,
    generate_prototypes,
    max_candidate_set,
    run_pipeline,
)
from repro.graph import is_connected
from repro.graph.graph import Graph
from repro.graph.isomorphism import (
    are_isomorphic,
    canonical_form,
    find_subgraph_isomorphisms,
)
from repro.runtime import Engine, MessageStats, PartitionedGraph

SLOW = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def connected_templates(draw, min_vertices=3, max_vertices=5, num_labels=3):
    """A random connected labeled template (duplicate labels allowed)."""
    n = draw(st.integers(min_vertices, max_vertices))
    labels = [draw(st.integers(0, num_labels - 1)) for _ in range(n)]
    graph = Graph()
    for v in range(n):
        graph.add_vertex(v, labels[v])
    # Random spanning tree guarantees connectivity.
    for v in range(1, n):
        parent = draw(st.integers(0, v - 1))
        graph.add_edge(parent, v)
    extra_pool = [
        (u, v) for u in range(n) for v in range(u + 1, n) if not graph.has_edge(u, v)
    ]
    for edge in extra_pool:
        if draw(st.booleans()):
            graph.add_edge(*edge)
    return PatternTemplate(graph, name="random")


@st.composite
def labeled_graphs(draw, max_vertices=24, num_labels=3):
    n = draw(st.integers(4, max_vertices))
    graph = Graph()
    for v in range(n):
        graph.add_vertex(v, draw(st.integers(0, num_labels - 1)))
    max_edges = min(3 * n, n * (n - 1) // 2)
    m = draw(st.integers(n // 2, max_edges))
    for _ in range(m):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v)
    return graph


def brute_force_vectors(graph, template, k):
    vectors = {}
    for proto in generate_prototypes(template, k):
        for mapping in find_subgraph_isomorphisms(proto.graph, graph):
            for v in mapping.values():
                vectors.setdefault(v, set()).add(proto.id)
    return vectors


class TestPipelineExactness:
    @SLOW
    @given(connected_templates(), labeled_graphs(), st.integers(0, 2))
    def test_precision_and_recall(self, template, graph, k):
        result = run_pipeline(graph, template, k, PipelineOptions(num_ranks=2))
        assert result.match_vectors == brute_force_vectors(graph, template, k)

    @SLOW
    @given(connected_templates(), labeled_graphs(), st.integers(0, 1))
    def test_counts_match_brute_force(self, template, graph, k):
        result = run_pipeline(
            graph, template, k, PipelineOptions(num_ranks=2, count_matches=True)
        )
        for proto in result.prototype_set:
            expected = sum(
                1 for _ in find_subgraph_isomorphisms(proto.graph, graph)
            )
            assert result.outcome_for(proto.id).match_mappings == expected

    @SLOW
    @given(connected_templates(max_vertices=4), labeled_graphs(max_vertices=18))
    def test_enumeration_mode_agrees_with_auto(self, template, graph):
        auto = run_pipeline(graph, template, 1, PipelineOptions(num_ranks=2))
        enum = run_pipeline(
            graph, template, 1,
            PipelineOptions(num_ranks=2, verification="enumeration",
                            include_full_walk=False),
        )
        assert auto.match_vectors == enum.match_vectors


class TestSearchSpaceProperties:
    @SLOW
    @given(connected_templates(), labeled_graphs(), st.integers(0, 2))
    def test_max_candidate_set_superset(self, template, graph, k):
        engine = Engine(PartitionedGraph(graph, 2), MessageStats(2))
        mstar = max_candidate_set(graph, template, engine)
        for proto in generate_prototypes(template, k):
            for mapping in find_subgraph_isomorphisms(proto.graph, graph):
                for tv, gv in mapping.items():
                    assert mstar.is_active(gv)
                    assert tv in mstar.roles(gv) or any(
                        template.graph.label(tv) == template.graph.label(r)
                        for r in mstar.roles(gv)
                    )

    @SLOW
    @given(connected_templates(), labeled_graphs())
    def test_containment_rule(self, template, graph):
        """V*_{δ,p} is contained in the union of its children's V*."""
        k = min(2, template.max_meaningful_distance())
        result = run_pipeline(graph, template, k, PipelineOptions(num_ranks=2))
        for proto in result.prototype_set:
            children = proto.children()
            if not children:
                continue
            union_children = set()
            for child in children:
                union_children |= result.outcome_for(child.id).solution_vertices
            assert result.outcome_for(proto.id).solution_vertices <= union_children


class TestPrototypeProperties:
    @SLOW
    @given(connected_templates(max_vertices=5), st.integers(0, 3))
    def test_generation_invariants(self, template, k):
        prototype_set = generate_prototypes(template, k)
        for proto in prototype_set:
            assert is_connected(proto.graph)
            assert set(proto.graph.vertices()) == set(template.graph.vertices())
            assert proto.num_edges == template.num_edges - proto.distance
            for u, v in proto.graph.edges():
                assert template.graph.has_edge(u, v)

    @SLOW
    @given(connected_templates(max_vertices=5))
    def test_no_duplicates_within_level(self, template):
        prototype_set = generate_prototypes(template, 2)
        for level in prototype_set.levels:
            forms = [canonical_form(p.graph) for p in level]
            assert len(forms) == len(set(forms))

    @SLOW
    @given(connected_templates(max_vertices=5))
    def test_canonical_form_matches_isomorphism(self, template):
        prototype_set = generate_prototypes(template, 1)
        protos = prototype_set.all()
        for i, a in enumerate(protos):
            for b in protos[i + 1 :]:
                same_form = canonical_form(a.graph) == canonical_form(b.graph)
                assert same_form == are_isomorphic(a.graph, b.graph)


class TestStateInvariants:
    @SLOW
    @given(connected_templates(), labeled_graphs())
    def test_active_edges_symmetric_after_pipeline_stages(self, template, graph):
        from repro.core import SearchState
        from repro.core.lcc import local_constraint_checking

        state = SearchState.initial(graph, template)
        proto = generate_prototypes(template, 0).at(0)[0]
        engine = Engine(PartitionedGraph(graph, 2), MessageStats(2))
        local_constraint_checking(state, proto.graph, engine)
        for v in state.active_vertices():
            for u in state.active_neighbors(v):
                assert v in state.active_neighbors(u)
                assert state.is_active(u)
