"""Fig. 2's "need for non-local constraints" examples, as executable tests.

Fig. 2 (bottom) shows invalid structures that would survive if only local
constraints were used.  These tests construct such structures and verify:

* iterated LCC alone keeps them (they are locally consistent everywhere);
* the non-local checks eliminate them;
* the full pipeline reports nothing (100% precision).
"""

from repro.core import (
    PatternTemplate,
    PipelineOptions,
    SearchState,
    generate_constraints,
    generate_prototypes,
    run_pipeline,
)
from repro.core.lcc import local_constraint_checking
from repro.core.nlcc import non_local_constraint_checking
from repro.graph import from_edges
from repro.runtime import Engine, MessageStats, PartitionedGraph


def engine_for(graph):
    return Engine(PartitionedGraph(graph, 2), MessageStats(2))


def run_lcc_only(graph, template):
    state = SearchState.initial(graph, template)
    proto = generate_prototypes(template, 0).at(0)[0]
    local_constraint_checking(state, proto.graph, engine_for(graph))
    return state, proto


class TestCycleCounterexample:
    """A 6-cycle with the labels of a triangle repeated twice: every vertex
    has locally perfect neighborhoods, but no triangle exists."""

    template = PatternTemplate.from_edges(
        [(0, 1), (1, 2), (2, 0)], labels={0: 1, 1: 2, 2: 3}, name="triangle"
    )
    # 1-2-3-1-2-3 hexagon
    graph = from_edges(
        [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)],
        labels={0: 1, 1: 2, 2: 3, 3: 1, 4: 2, 5: 3},
    )

    def test_lcc_alone_is_fooled(self):
        state, _proto = run_lcc_only(self.graph, self.template)
        assert state.num_active_vertices == 6  # everything survives

    def test_cycle_constraint_eliminates(self):
        state, proto = run_lcc_only(self.graph, self.template)
        constraint_set = generate_constraints(proto.graph)
        cycle = next(c for c in constraint_set.non_local if c.kind == "cycle")
        result = non_local_constraint_checking(
            state, cycle, engine_for(self.graph)
        )
        assert result.eliminated_roles > 0

    def test_pipeline_reports_nothing(self):
        result = run_pipeline(
            self.graph, self.template, 0, PipelineOptions(num_ranks=2)
        )
        assert result.match_vectors == {}


class TestDuplicateLabelCounterexample:
    """Template: a path 1-2-1 (two *distinct* label-1 endpoints).  A single
    1-2 edge lets the lone label-1 vertex pretend to be both endpoints."""

    template = PatternTemplate.from_edges(
        [(0, 1), (1, 2)], labels={0: 1, 1: 2, 2: 1}, name="twins"
    )
    graph = from_edges([(0, 1)], labels={0: 1, 1: 2})

    def test_lcc_alone_is_fooled(self):
        state, _proto = run_lcc_only(self.graph, self.template)
        # vertex 0 claims both endpoint roles; vertex 1 the middle.
        assert state.is_active(0)
        assert state.is_active(1)

    def test_path_constraint_eliminates(self):
        state, proto = run_lcc_only(self.graph, self.template)
        constraint_set = generate_constraints(proto.graph)
        path = next(c for c in constraint_set.non_local if c.kind == "path")
        result = non_local_constraint_checking(state, path, engine_for(self.graph))
        assert result.eliminated_roles > 0

    def test_pipeline_reports_nothing(self):
        result = run_pipeline(
            self.graph, self.template, 0, PipelineOptions(num_ranks=2)
        )
        assert result.match_vectors == {}


class TestSharedEdgeCounterexample:
    """Non-edge-monocyclic template (two triangles sharing an edge): each
    cycle exists individually through different vertices, but never with a
    consistent shared edge — the TDS/full-walk case of Fig. 2."""

    template = PatternTemplate.from_edges(
        [(0, 1), (1, 2), (2, 0), (1, 3), (3, 2)],
        labels={0: 1, 1: 2, 2: 3, 3: 4},
        name="bowtie-ish",
    )

    def build_graph(self):
        # Two triangles (1,2,3) and a (2,3,4) triangle that do NOT share
        # their 2-3 edge: the 2-3 edges involved are different.
        return from_edges(
            [
                (0, 1), (1, 2), (2, 0),          # triangle labels 1-2-3
                (1, 5), (5, 3), (3, 1),          # 2-3'-4 triangle via other 3
            ],
            labels={0: 1, 1: 2, 2: 3, 3: 4, 5: 3},
        )

    def test_individual_cycles_pass_but_pipeline_rejects(self):
        graph = self.build_graph()
        result = run_pipeline(
            graph, self.template, 0, PipelineOptions(num_ranks=2)
        )
        assert result.match_vectors == {}

    def test_brute_force_agrees(self):
        from repro.graph.isomorphism import has_match

        assert not has_match(self.template.graph, self.build_graph())
