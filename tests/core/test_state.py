"""Tests for SearchState and the NLCC work-recycling cache."""

from repro.core import NlccCache, PatternTemplate, SearchState, generate_prototypes
from repro.graph import from_edges


def template():
    return PatternTemplate.from_edges(
        [(0, 1), (1, 2), (2, 0)], labels={0: 1, 1: 2, 2: 3}, name="tri"
    )


def background():
    return from_edges(
        [(10, 11), (11, 12), (12, 10), (12, 13), (13, 14)],
        labels={10: 1, 11: 2, 12: 3, 13: 1, 14: 9},
    )


class TestInitialState:
    def test_candidates_by_label(self):
        state = SearchState.initial(background(), template())
        assert state.roles(10) == {0}
        assert state.roles(13) == {0}
        assert not state.is_active(14)  # label 9 not in template

    def test_full_adjacency_initially_active(self):
        # Alg. 4 initializes epsilon(v) to the raw adjacency: edges to
        # non-candidate neighbors stay until LCC eliminates them.
        state = SearchState.initial(background(), template())
        assert state.edge_is_active(10, 11)
        assert state.edge_is_active(13, 14)

    def test_counts(self):
        state = SearchState.initial(background(), template())
        assert state.num_active_vertices == 4
        # num_active_edges only counts candidate-candidate edges.
        assert state.num_active_edges == 4


class TestMutation:
    def test_deactivate_vertex_removes_edges(self):
        state = SearchState.initial(background(), template())
        state.deactivate_vertex(12)
        assert not state.is_active(12)
        assert not state.edge_is_active(11, 12)
        assert 12 not in state.active_neighbors(10)

    def test_deactivate_edge_is_symmetric(self):
        state = SearchState.initial(background(), template())
        state.deactivate_edge(10, 11)
        assert 11 not in state.active_neighbors(10)
        assert 10 not in state.active_neighbors(11)

    def test_remove_role_keeps_vertex_with_other_roles(self):
        state = SearchState.initial(background(), template())
        state.candidates[10] = {0, 1}
        state.remove_role(10, 0)
        assert state.roles(10) == {1}

    def test_remove_last_role_deactivates(self):
        state = SearchState.initial(background(), template())
        state.remove_role(10, 0)
        assert not state.is_active(10)

    def test_remove_role_of_inactive_vertex_is_noop(self):
        state = SearchState.initial(background(), template())
        state.remove_role(14, 0)
        assert not state.is_active(14)


class TestViews:
    def test_copy_independent(self):
        state = SearchState.initial(background(), template())
        clone = state.copy()
        clone.deactivate_vertex(10)
        assert state.is_active(10)

    def test_to_graph(self):
        state = SearchState.initial(background(), template())
        g = state.to_graph()
        assert g.num_vertices == 4
        assert g.has_edge(10, 11)
        assert g.label(10) == 1

    def test_active_edge_list_canonical(self):
        state = SearchState.initial(background(), template())
        edges = state.active_edge_list()
        assert all(u < v for u, v in edges)
        assert len(edges) == state.num_active_edges

    def test_union_with(self):
        state_a = SearchState.initial(background(), template())
        state_b = state_a.copy()
        state_a.deactivate_vertex(10)
        state_b.deactivate_vertex(13)
        state_a.union_with(state_b)
        assert state_a.is_active(10)
        assert state_a.is_active(13)
        assert state_a.edge_is_active(10, 11)

    def test_empty(self):
        state = SearchState.empty(background())
        assert state.num_active_vertices == 0


class TestForPrototypeSearch:
    def test_roles_reset_by_label(self):
        state = SearchState.initial(background(), template())
        state.candidates[10] = set()  # corrupt roles; vertex still "active"
        state.candidates[10] = {0}
        protos = generate_prototypes(template(), 1)
        scoped = state.for_prototype_search(protos.at(0)[0])
        assert scoped.roles(10) == {0}

    def test_edges_filtered_by_prototype_adjacency(self):
        protos = generate_prototypes(template(), 1)
        child = protos.at(1)[0]  # a path: one triangle edge removed
        state = SearchState.initial(background(), template())
        scoped = state.for_prototype_search(child)
        missing = child.removed_edges()[0]
        lab_a = template().graph.label(missing[0])
        lab_b = template().graph.label(missing[1])
        for u, v in scoped.active_edge_list():
            pair = tuple(sorted((scoped.graph.label(u), scoped.graph.label(v))))
            assert pair != tuple(sorted((lab_a, lab_b)))

    def test_readmission_restores_background_edges(self):
        protos = generate_prototypes(template(), 1)
        root = protos.at(0)[0]
        state = SearchState.initial(background(), template())
        # Simulate a union state that lost edge (10, 11).
        state.deactivate_edge(10, 11)
        scoped = state.for_prototype_search(root, readmit_label_pairs=[(1, 2)])
        assert scoped.edge_is_active(10, 11)

    def test_no_readmission_without_pair(self):
        protos = generate_prototypes(template(), 1)
        root = protos.at(0)[0]
        state = SearchState.initial(background(), template())
        state.deactivate_edge(10, 11)
        scoped = state.for_prototype_search(root)
        assert not scoped.edge_is_active(10, 11)


class TestReadmitLabelPairs:
    """Obs. 1 readmission edge cases, on the dict and array states alike."""

    def path_template(self):
        # 1 - 2 - 3 path: the label pair (1, 3) is NOT adjacent.
        return PatternTemplate.from_edges(
            [(0, 1), (1, 2)], labels={0: 1, 1: 2, 2: 3}, name="path"
        )

    def path_background(self):
        # Triangle 10-11-12 plus the chord-less pair: the (10, 12)
        # background edge carries the non-adjacent label pair (1, 3).
        return from_edges(
            [(10, 11), (11, 12), (10, 12)],
            labels={10: 1, 11: 2, 12: 3},
        )

    def scoped_pair(self, state, proto, pairs):
        """The dict scoping and its array twin, as comparable snapshots."""
        from repro.core import ArraySearchState

        astate = ArraySearchState.from_search_state(state)
        scoped = state.for_prototype_search(proto, readmit_label_pairs=pairs)
        ascoped = astate.for_prototype_search(proto, readmit_label_pairs=pairs)
        exported = ascoped.to_search_state()
        assert exported.candidates == scoped.candidates
        assert sorted(exported.active_edge_list()) == sorted(
            scoped.active_edge_list()
        )
        return scoped

    def test_readmit_pair_must_be_prototype_adjacent(self):
        # (1, 3) is a background edge's pair but not a path-adjacent one:
        # asking for its readmission must be a no-op.
        proto = generate_prototypes(self.path_template(), 0).at(0)[0]
        state = SearchState.initial(self.path_background(), self.path_template())
        state.deactivate_edge(10, 12)
        scoped = self.scoped_pair(state, proto, [(1, 3)])
        assert not scoped.edge_is_active(10, 12)

    def test_readmit_pair_is_unordered(self):
        proto = generate_prototypes(template(), 1).at(0)[0]
        state = SearchState.initial(background(), template())
        state.deactivate_edge(10, 11)  # labels (1, 2)
        scoped = self.scoped_pair(state, proto, [(2, 1)])
        assert scoped.edge_is_active(10, 11)

    def test_no_readmission_to_inactive_vertices(self):
        proto = generate_prototypes(template(), 1).at(0)[0]
        state = SearchState.initial(background(), template())
        state.deactivate_vertex(13)  # label 1; edge (12, 13) has pair (1, 3)
        scoped = self.scoped_pair(state, proto, [(1, 3)])
        assert not scoped.edge_is_active(12, 13)
        assert not scoped.is_active(13)

    def test_readmission_is_idempotent_for_live_edges(self):
        # Readmitting a pair whose edges are already active changes nothing.
        proto = generate_prototypes(template(), 1).at(0)[0]
        state = SearchState.initial(background(), template())
        plain = state.for_prototype_search(proto)
        readmitted = self.scoped_pair(state, proto, [(1, 2), (2, 3), (1, 3)])
        assert readmitted.candidates == plain.candidates
        assert sorted(readmitted.active_edge_list()) == sorted(
            plain.active_edge_list()
        )


class TestNlccCache:
    def test_miss_then_hit(self):
        cache = NlccCache()
        assert not cache.is_satisfied("k", 5)
        cache.mark_satisfied("k", [5])
        assert cache.is_satisfied("k", 5)
        assert cache.hits == 1
        assert cache.misses == 1

    def test_separate_keys(self):
        cache = NlccCache()
        cache.mark_satisfied("a", [1])
        assert not cache.is_satisfied("b", 1)

    def test_size(self):
        cache = NlccCache()
        cache.mark_satisfied("a", [1, 2])
        cache.mark_satisfied("b", [3])
        assert cache.size() == (2, 3)
        assert cache.known_constraints() == {"a", "b"}
