"""Tests for wildcard vertex labels (the §3.1 extension)."""

import pytest

from repro.core import (
    PatternTemplate,
    PipelineOptions,
    WILDCARD,
    has_wildcards,
    run_wildcard_pipeline,
    wildcard_vertices,
)
from repro.core.wildcards import instantiations
from repro.errors import TemplateError
from repro.graph import from_edges
from repro.graph.generators import planted_graph
from repro.graph.isomorphism import find_subgraph_isomorphisms


def wildcard_template():
    """Triangle where the apex label is unknown."""
    return PatternTemplate.from_edges(
        [(0, 1), (1, 2), (2, 0)],
        labels={0: 1, 1: 2, 2: WILDCARD},
        name="wild-triangle",
    )


def background():
    return planted_graph(
        40, 90, [(0, 1), (1, 2), (2, 0)], [1, 2, 3], copies=2,
        num_labels=4, seed=17,
    )


class TestDetection:
    def test_has_wildcards(self):
        assert has_wildcards(wildcard_template())
        plain = PatternTemplate.from_edges([(0, 1)], labels={0: 1, 1: 2})
        assert not has_wildcards(plain)

    def test_wildcard_vertices(self):
        assert wildcard_vertices(wildcard_template()) == [2]


class TestInstantiations:
    def test_one_per_graph_label(self):
        graph = background()
        labels = graph.label_set()
        expanded = list(instantiations(wildcard_template(), graph))
        assert len(expanded) == len(labels)
        assert {t.label(2) for t in expanded} == labels

    def test_plain_template_passes_through(self):
        plain = PatternTemplate.from_edges([(0, 1)], labels={0: 1, 1: 2})
        expanded = list(instantiations(plain, background()))
        assert len(expanded) == 1
        assert expanded[0] is plain

    def test_degree_screen(self):
        # Label 9 exists only on an isolated-ish vertex of degree 1; a
        # wildcard needing degree 2 cannot take it.
        graph = from_edges(
            [(0, 1), (1, 2), (2, 0), (2, 3)],
            labels={0: 1, 1: 2, 2: 3, 3: 9},
        )
        expanded = list(instantiations(wildcard_template(), graph))
        assert 9 not in {t.label(2) for t in expanded}

    def test_budget_enforced(self):
        template = PatternTemplate.from_edges(
            [(0, 1), (1, 2)],
            labels={0: WILDCARD, 1: WILDCARD, 2: WILDCARD},
        )
        with pytest.raises(TemplateError):
            list(instantiations(template, background(), max_instantiations=2))

    def test_mandatory_edges_inherited(self):
        template = PatternTemplate.from_edges(
            [(0, 1), (1, 2), (2, 0)],
            labels={0: 1, 1: 2, 2: WILDCARD},
            mandatory_edges=[(0, 1)],
        )
        for inst in instantiations(template, background()):
            assert (0, 1) in inst.mandatory_edges


class TestWildcardPipeline:
    def test_precision_and_recall(self):
        graph = background()
        template = wildcard_template()
        result = run_wildcard_pipeline(
            graph, template, 1, PipelineOptions(num_ranks=2)
        )
        # Reference: brute force over every labeled instantiation.
        expected = {}
        from repro.core import generate_prototypes

        for inst in instantiations(template, graph):
            for proto in generate_prototypes(inst, 1):
                for mapping in find_subgraph_isomorphisms(proto.graph, graph):
                    for v in mapping.values():
                        expected.setdefault(v, set()).add((inst.name, proto.id))
        assert result.match_vectors == expected

    def test_matched_instantiations_reported(self):
        graph = background()
        result = run_wildcard_pipeline(
            graph, wildcard_template(), 0, PipelineOptions(num_ranks=2)
        )
        with_matches = result.instantiations_with_matches()
        assert any("[3]" in name for name in with_matches)  # planted apex label

    def test_counts_aggregate(self):
        graph = background()
        result = run_wildcard_pipeline(
            graph, wildcard_template(), 0,
            PipelineOptions(num_ranks=2, count_matches=True),
        )
        total = result.total_match_mappings()
        expected = sum(
            1
            for inst in instantiations(wildcard_template(), graph)
            for _ in find_subgraph_isomorphisms(inst.graph, graph)
        )
        assert total == expected

    def test_simulated_time_accumulates(self):
        graph = background()
        result = run_wildcard_pipeline(
            graph, wildcard_template(), 0, PipelineOptions(num_ranks=2)
        )
        assert result.total_simulated_seconds > 0
        assert len(result.per_instantiation) >= 2
