"""Tests for edge-labeled matching (the §2 generalization)."""

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.core import PatternTemplate, PipelineOptions, generate_prototypes, run_pipeline
from repro.graph.graph import Graph
from repro.graph.isomorphism import (
    are_isomorphic,
    canonical_form,
    find_subgraph_isomorphisms,
)

SLOW = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def labeled_triangle(edge_labels):
    g = Graph()
    for v, lab in enumerate([1, 2, 3]):
        g.add_vertex(v, lab)
    for (u, v), el in zip([(0, 1), (1, 2), (2, 0)], edge_labels):
        g.add_edge(u, v, el)
    return g


class TestGraphEdgeLabels:
    def test_store_and_query(self):
        g = labeled_triangle([7, None, 9])
        assert g.edge_label(0, 1) == 7
        assert g.edge_label(1, 0) == 7
        assert g.edge_label(1, 2) is None
        assert g.has_edge_labels

    def test_removal_clears_label(self):
        g = labeled_triangle([7, 8, 9])
        g.remove_edge(0, 1)
        g.add_edge(0, 1)
        assert g.edge_label(0, 1) is None

    def test_remove_vertex_clears_labels(self):
        g = labeled_triangle([7, 8, 9])
        g.remove_vertex(0)
        assert not g.has_edge(0, 1)
        assert (0, 1) not in g.edge_labels()

    def test_copy_and_subgraph_preserve(self):
        g = labeled_triangle([7, 8, 9])
        assert g.copy().edge_label(2, 0) == 9
        assert g.subgraph([0, 1]).edge_label(0, 1) == 7
        assert g.edge_subgraph([(1, 2)]).edge_label(1, 2) == 8

    def test_equality_includes_edge_labels(self):
        assert labeled_triangle([7, 8, 9]) != labeled_triangle([7, 8, 1])
        assert labeled_triangle([7, 8, 9]) == labeled_triangle([7, 8, 9])


class TestIsomorphismWithEdgeLabels:
    def test_matcher_respects_edge_labels(self):
        pattern = labeled_triangle([7, None, None])
        wrong = labeled_triangle([6, None, None])
        right = labeled_triangle([7, 5, 5])
        assert not list(find_subgraph_isomorphisms(pattern, wrong))
        assert list(find_subgraph_isomorphisms(pattern, right))

    def test_unlabeled_pattern_edge_matches_anything(self):
        pattern = labeled_triangle([None, None, None])
        target = labeled_triangle([7, 8, 9])
        assert list(find_subgraph_isomorphisms(pattern, target))

    def test_are_isomorphic_exact_on_edge_labels(self):
        assert are_isomorphic(labeled_triangle([7, 8, 9]), labeled_triangle([7, 8, 9]))
        assert not are_isomorphic(
            labeled_triangle([7, 8, 9]), labeled_triangle([7, 8, None])
        )

    def test_canonical_form_distinguishes_edge_labels(self):
        assert canonical_form(labeled_triangle([7, 8, 9])) != canonical_form(
            labeled_triangle([9, 8, 7])
        ) or are_isomorphic(
            labeled_triangle([7, 8, 9]), labeled_triangle([9, 8, 7])
        )
        assert canonical_form(labeled_triangle([7, 7, 7])) == canonical_form(
            labeled_triangle([7, 7, 7])
        )

    def test_canonical_form_invariant_under_relabeling(self):
        a = labeled_triangle([7, 8, 9])
        b = Graph()
        for v, lab in [(10, 2), (20, 3), (30, 1)]:
            b.add_vertex(v, lab)
        b.add_edge(30, 10, 7)   # 1-2 edge
        b.add_edge(10, 20, 8)   # 2-3 edge
        b.add_edge(20, 30, 9)   # 3-1 edge
        assert canonical_form(a) == canonical_form(b)


class TestTemplatesAndPrototypes:
    def template(self):
        return PatternTemplate.from_edges(
            [(0, 1), (1, 2), (2, 0)],
            labels={0: 1, 1: 2, 2: 3},
            edge_labels={(0, 1): 7},
            name="el",
        )

    def test_template_carries_edge_labels(self):
        assert self.template().graph.edge_label(0, 1) == 7

    def test_prototypes_inherit_edge_labels(self):
        for proto in generate_prototypes(self.template(), 1):
            if proto.graph.has_edge(0, 1):
                assert proto.graph.edge_label(0, 1) == 7

    def test_dedup_distinguishes_edge_labels(self):
        # An unlabeled symmetric square with ONE labeled edge: removing the
        # labeled edge vs an unlabeled one must give different prototypes.
        template = PatternTemplate.from_edges(
            [(0, 1), (1, 2), (2, 3), (3, 0)],
            labels={v: 0 for v in range(4)},
            edge_labels={(0, 1): 5},
        )
        level1 = generate_prototypes(template, 1).at(1)
        # Three classes: labeled edge removed; labeled edge at a path end;
        # labeled edge in the middle.  Without edge-label-aware dedup all
        # four removals would collapse into a single path prototype.
        assert len(level1) == 3
        with_label = [p for p in level1 if p.graph.has_edge_labels]
        assert len(with_label) == 2


class TestEdgeLabeledPipeline:
    def background(self):
        g = Graph()
        labels = {0: 1, 1: 2, 2: 3, 3: 2}
        for v, lab in labels.items():
            g.add_vertex(v, lab)
        g.add_edge(0, 1, 7)   # the matching triangle
        g.add_edge(1, 2, 4)
        g.add_edge(2, 0)
        g.add_edge(0, 3, 6)   # decoy triangle with the wrong edge label
        g.add_edge(3, 2, 4)
        return g

    def test_pipeline_filters_by_edge_label(self):
        template = PatternTemplate.from_edges(
            [(0, 1), (1, 2), (2, 0)],
            labels={0: 1, 1: 2, 2: 3},
            edge_labels={(0, 1): 7},
            name="el",
        )
        result = run_pipeline(
            self.background(), template, 0, PipelineOptions(num_ranks=2)
        )
        assert result.matched_vertices() == {0, 1, 2}

    def test_relaxation_readmits_decoy(self):
        """At k=1 the labeled edge may be deleted — the decoy matches."""
        template = PatternTemplate.from_edges(
            [(0, 1), (1, 2), (2, 0)],
            labels={0: 1, 1: 2, 2: 3},
            edge_labels={(0, 1): 7},
            name="el",
        )
        result = run_pipeline(
            self.background(), template, 1, PipelineOptions(num_ranks=2)
        )
        assert 3 in result.matched_vertices()

    @SLOW
    @given(st.data())
    def test_property_pipeline_equals_brute_force(self, data):
        rng_labels = st.integers(0, 2)
        edge_label_or_none = st.one_of(st.none(), st.integers(0, 1))
        n = data.draw(st.integers(6, 14))
        graph = Graph()
        for v in range(n):
            graph.add_vertex(v, data.draw(rng_labels))
        for u in range(n):
            for v in range(u + 1, n):
                if data.draw(st.booleans()) and data.draw(st.booleans()):
                    graph.add_edge(u, v, data.draw(edge_label_or_none))
        template_graph = Graph()
        for v in range(3):
            template_graph.add_vertex(v, data.draw(rng_labels))
        for (u, v) in [(0, 1), (1, 2), (2, 0)]:
            template_graph.add_edge(u, v, data.draw(edge_label_or_none))
        template = PatternTemplate(template_graph, name="rand-el")
        k = data.draw(st.integers(0, 1))
        result = run_pipeline(graph, template, k, PipelineOptions(num_ranks=2))
        expected = {}
        for proto in generate_prototypes(template, k):
            for mapping in find_subgraph_isomorphisms(proto.graph, graph):
                for v in mapping.values():
                    expected.setdefault(v, set()).add(proto.id)
        assert result.match_vectors == expected
