"""Tests for the Arabesque-style TLE baseline."""

import pytest

from repro.baselines import (
    arabesque_count_motifs,
    replicated_graph_bytes,
)
from repro.errors import MemoryLimitExceeded
from repro.graph import from_edges
from repro.graph.generators import gnm_graph, suite_graph
from repro.graph.isomorphism import canonical_form


class TestCorrectness:
    def test_triangle_and_paths(self):
        g = from_edges([(0, 1), (1, 2), (2, 0), (2, 3)])
        result = arabesque_count_motifs(g, 3)
        by_edges = {}
        for key, count in result.counts.items():
            edges = len(key[2])
            by_edges[edges] = by_edges.get(edges, 0) + count
        assert by_edges[3] == 1
        assert by_edges[2] == 2

    def test_matches_exhaustive_enumeration(self):
        import itertools

        from repro.graph.algorithms import is_connected

        g = gnm_graph(14, 30, num_labels=1, seed=1)
        result = arabesque_count_motifs(g, 3)
        expected = {}
        for triple in itertools.combinations(list(g.vertices()), 3):
            sub = g.subgraph(triple)
            if sub.num_vertices == 3 and is_connected(sub) and sub.num_edges >= 2:
                key = canonical_form(sub)
                expected[key] = expected.get(key, 0) + 1
        assert result.counts == expected

    def test_each_embedding_once(self):
        # K4: exactly one 4-clique embedding, 4 triangles.
        k4 = from_edges([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
        four = arabesque_count_motifs(k4, 4)
        assert four.total_embeddings() == 1
        three = arabesque_count_motifs(k4, 3)
        assert three.total_embeddings() == 4

    def test_size_one(self):
        g = from_edges([(0, 1)])
        result = arabesque_count_motifs(g, 1)
        assert result.total_embeddings() == 2

    def test_bad_size(self):
        with pytest.raises(ValueError):
            arabesque_count_motifs(from_edges([(0, 1)]), 0)


class TestExecutionModel:
    def test_replication_scales_with_ranks(self):
        g = suite_graph("citeseer")
        assert replicated_graph_bytes(g, 8) == 4 * replicated_graph_bytes(g, 2)

    def test_oom_on_replication(self):
        g = suite_graph("mico")
        with pytest.raises(MemoryLimitExceeded) as info:
            arabesque_count_motifs(g, 3, num_ranks=16, memory_limit_bytes=1000)
        assert "replication" in str(info.value)

    def test_oom_on_frontier_growth(self):
        g = gnm_graph(200, 2000, num_labels=1, seed=2)
        budget = replicated_graph_bytes(g, 4) + 10_000
        with pytest.raises(MemoryLimitExceeded) as info:
            arabesque_count_motifs(g, 4, num_ranks=4, memory_limit_bytes=budget)
        assert "frontier" in str(info.value)

    def test_supersteps_counted(self):
        g = from_edges([(0, 1), (1, 2), (2, 0)])
        result = arabesque_count_motifs(g, 3)
        assert result.supersteps == 3

    def test_simulated_time_scales_down_with_ranks(self):
        g = suite_graph("citeseer")
        few = arabesque_count_motifs(g, 3, num_ranks=2)
        many = arabesque_count_motifs(g, 3, num_ranks=16)
        assert many.simulated_seconds < few.simulated_seconds

    def test_peak_memory_recorded(self):
        g = suite_graph("citeseer")
        result = arabesque_count_motifs(g, 3, num_ranks=4)
        assert result.peak_memory_bytes >= replicated_graph_bytes(g, 4)
        assert result.peak_frontier > 0
