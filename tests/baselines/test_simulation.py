"""Tests for the graph-simulation baseline family."""

from repro.baselines.simulation import (
    dual_simulation,
    graph_simulation,
    strong_simulation,
)
from repro.core import PipelineOptions, run_pipeline
from repro.core.template import PatternTemplate
from repro.graph import from_edges
from repro.graph.generators import planted_graph
from repro.graph.isomorphism import find_subgraph_isomorphisms


def triangle_template():
    return PatternTemplate.from_edges(
        [(0, 1), (1, 2), (2, 0)], labels={0: 1, 1: 2, 2: 3}, name="tri"
    )


def hexagon():
    """The Fig. 2-style fooling structure: locally perfect, no triangle."""
    return from_edges(
        [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)],
        labels={0: 1, 1: 2, 2: 3, 3: 1, 4: 2, 5: 3},
    )


class TestSemantics:
    def test_simulation_never_misses_real_matches(self):
        template = triangle_template()
        graph = planted_graph(40, 90, template.edges(), [1, 2, 3], copies=2, seed=61)
        exact = {
            v
            for m in find_subgraph_isomorphisms(template.graph, graph)
            for v in m.values()
        }
        for simulate in (graph_simulation, dual_simulation, strong_simulation):
            assert exact <= simulate(graph, template).matched_vertices()

    def test_dual_simulation_keeps_false_positives(self):
        """The hexagon survives dual simulation — the paper's reason for
        non-local constraints on top of arc consistency."""
        result = dual_simulation(hexagon(), triangle_template())
        assert len(result.matched_vertices()) == 6  # all false positives

    def test_exact_pipeline_rejects_what_simulation_keeps(self):
        graph = hexagon()
        exact = run_pipeline(
            graph, triangle_template(), 0, PipelineOptions(num_ranks=2)
        )
        dual = dual_simulation(graph, triangle_template())
        assert exact.match_vectors == {}
        assert dual.matched_vertices() != set()

    def test_strong_simulation_tighter_than_dual(self):
        # A long path of 1-2-3 repeats with one real triangle: strong
        # simulation's ball restriction prunes the far-away pretenders.
        graph = from_edges(
            [(0, 1), (1, 2), (2, 0),               # real triangle
             (10, 11), (11, 12)],                  # bare path, labels 1-2-3
            labels={0: 1, 1: 2, 2: 3, 10: 1, 11: 2, 12: 3},
        )
        template = triangle_template()
        dual = dual_simulation(graph, template)
        strong = strong_simulation(graph, template)
        assert strong.matched_vertices() <= dual.matched_vertices()
        assert {0, 1, 2} <= strong.matched_vertices()
        assert 10 not in strong.matched_vertices()

    def test_all_or_nothing(self):
        """No simulation exists when a template vertex has no candidate."""
        graph = from_edges([(0, 1)], labels={0: 1, 1: 2})
        result = dual_simulation(graph, triangle_template())
        assert result.empty
        assert result.matched_vertices() == set()


class TestMechanics:
    def test_graph_simulation_single_pass(self):
        result = graph_simulation(hexagon(), triangle_template())
        assert result.iterations == 1

    def test_dual_simulation_iterates(self):
        # Chain that collapses step by step under iteration.
        graph = from_edges(
            [(0, 1), (1, 2)], labels={0: 1, 1: 2, 2: 3}
        )
        template = PatternTemplate.from_edges(
            [(0, 1), (1, 2), (2, 3)], labels={0: 1, 1: 2, 2: 3, 3: 1}
        )
        result = dual_simulation(graph, template)
        assert result.empty
        assert result.iterations >= 2

    def test_candidate_sets_keyed_by_template_vertex(self):
        template = triangle_template()
        graph = planted_graph(30, 60, template.edges(), [1, 2, 3], copies=1, seed=62)
        result = dual_simulation(graph, template)
        assert set(result.candidates) == set(template.graph.vertices())
        for w, candidates in result.candidates.items():
            for v in candidates:
                assert graph.label(v) == template.label(w)

    def test_repr(self):
        result = dual_simulation(hexagon(), triangle_template())
        assert "dual-simulation" in repr(result)
