"""Tests for the memory model and report formatting."""

import pytest

from repro.analysis import (
    dynamic_state_bytes,
    format_bytes,
    format_count,
    format_seconds,
    format_table,
    memory_breakdown,
    relative_breakdown,
    series,
    speedup,
    static_state_bytes,
    topology_bytes,
)
from repro.graph import from_edges
from repro.graph.generators import webgraph
from repro.runtime import MessageStats


class TestMemoryModel:
    def test_topology_dominates_on_plain_graph(self):
        """Fig. 11(a): ~86% of memory is topology at the paper's settings."""
        g = webgraph(2000, edges_per_vertex=8, seed=1)
        breakdown = memory_breakdown(g)
        fraction = relative_breakdown(breakdown)
        assert fraction["topology"] > 0.7

    def test_topology_scales_with_edges(self):
        small = topology_bytes(from_edges([(0, 1)]))
        big = topology_bytes(webgraph(500, seed=2))
        assert big > small

    def test_static_state_scales_with_prototypes(self):
        g = webgraph(200, seed=3)
        assert static_state_bytes(g, num_prototypes=64) > static_state_bytes(
            g, num_prototypes=32
        )

    def test_dynamic_state_from_intervals(self):
        stats = MessageStats(2)
        for _ in range(10):
            stats.record_message(0, 1, True)
        stats.barrier()
        assert dynamic_state_bytes(stats) == 10 * 2 * 32

    def test_dynamic_state_empty(self):
        assert dynamic_state_bytes(MessageStats(2)) == 0

    def test_breakdown_total(self):
        g = webgraph(100, seed=4)
        breakdown = memory_breakdown(g)
        assert breakdown["total"] == (
            breakdown["topology"] + breakdown["static"] + breakdown["dynamic"]
        )

    def test_relative_fractions_sum_to_one(self):
        g = webgraph(100, seed=5)
        fractions = relative_breakdown(memory_breakdown(g))
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_relative_empty(self):
        assert relative_breakdown({"topology": 0, "static": 0, "dynamic": 0}) == {
            "topology": 0.0,
            "static": 0.0,
            "dynamic": 0.0,
        }


class TestReportFormatting:
    def test_table_alignment(self):
        table = format_table(["name", "value"], [["a", 1], ["bcd", 22]])
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert "---" in lines[1]
        assert len(lines) == 4

    def test_table_floats_formatted(self):
        table = format_table(["x"], [[1.23456]])
        assert "1.235" in table

    def test_seconds_scales(self):
        assert format_seconds(5e-7).endswith("us")
        assert format_seconds(0.005).endswith("ms")
        assert format_seconds(5).endswith("s")
        assert format_seconds(600).endswith("min")
        assert format_seconds(10000).endswith("h")

    def test_bytes_scales(self):
        assert format_bytes(512) == "512.0B"
        assert format_bytes(2048).endswith("KB")
        assert format_bytes(5 * 1024**3).endswith("GB")

    def test_count_scales(self):
        assert format_count(999) == "999"
        assert format_count(1500) == "1.5K"
        assert format_count(2_500_000) == "2.5M"
        assert format_count(3_100_000_000) == "3.1B"

    def test_speedup(self):
        assert speedup(10.0, 2.0) == pytest.approx(5.0)
        assert speedup(10.0, 0.0) == float("inf")
        assert speedup(0.0, 0.0) == 1.0

    def test_series(self):
        text = series("weak-scaling", [2, 4], [1.0, 1.1])
        assert "[weak-scaling]" in text
        assert "2: 1.0000" in text


class TestBarChart:
    def test_rows_and_scaling(self):
        from repro.analysis import bar_chart

        chart = bar_chart(["a", "bb"], [1.0, 2.0], width=10)
        lines = chart.splitlines()
        assert len(lines) == 2
        assert lines[1].count("#") == 10  # max value fills the bar
        assert lines[0].count("#") == 5

    def test_empty(self):
        from repro.analysis import bar_chart

        assert bar_chart([], []) == "(no data)"

    def test_zero_values(self):
        from repro.analysis import bar_chart

        chart = bar_chart(["x"], [0.0], width=4)
        assert "####" not in chart
