"""Tests for the precision/recall audit utility."""

import dataclasses

from repro.analysis.audit import audit_match_vectors, audit_result
from repro.core import PipelineOptions, naive_options, run_pipeline
from repro.core.template import PatternTemplate
from repro.graph.generators import planted_graph

EDGES = [(0, 1), (1, 2), (2, 0), (2, 3)]
LABELS = [1, 2, 3, 4]


def workload(seed=14):
    graph = planted_graph(40, 90, EDGES, LABELS, copies=2, num_labels=5, seed=seed)
    template = PatternTemplate.from_edges(
        EDGES, {i: l for i, l in enumerate(LABELS)}, name="t"
    )
    return graph, template


class TestExactRuns:
    def test_default_pipeline_audits_clean(self):
        graph, template = workload()
        result = run_pipeline(
            graph, template, 1, PipelineOptions(num_ranks=2, count_matches=True)
        )
        report = audit_result(graph, result)
        assert report.exact
        assert report.worst_precision() == 1.0
        assert report.worst_recall() == 1.0
        assert report.failures() == []
        assert audit_match_vectors(graph, result) == {}

    def test_naive_audits_clean_too(self):
        graph, template = workload()
        result = run_pipeline(graph, template, 1, naive_options())
        assert audit_result(graph, result).exact

    def test_report_repr(self):
        graph, template = workload()
        result = run_pipeline(graph, template, 0, PipelineOptions(num_ranks=2))
        report = audit_result(graph, result)
        assert "exact=True" in repr(report)
        assert "precision=1.000" in repr(report.prototypes[0])


class TestDetectsViolations:
    def test_flags_imprecise_constraint_only_run(self):
        """A superset-only run (no full walk, no enumeration) must fail an
        audit whenever false positives survive."""
        graph, template = workload(seed=3)
        result = run_pipeline(
            graph, template, 1,
            PipelineOptions(
                num_ranks=2,
                include_full_walk=False,
                verification="constraints",
            ),
        )
        report = audit_result(graph, result)
        # recall always holds (pruning is sound)...
        assert report.worst_recall() == 1.0
        # ...and the audit exposes any precision gap without crashing.
        for audit in report.prototypes:
            assert audit.false_negatives == set()
            assert 0.0 <= audit.vertex_precision <= 1.0

    def test_flags_tampered_result(self):
        graph, template = workload()
        result = run_pipeline(graph, template, 0, PipelineOptions(num_ranks=2))
        outcome = result.outcomes()[0]
        intruder = next(
            v for v in graph.vertices() if v not in outcome.solution_vertices
        )
        outcome.solution_vertices.add(intruder)
        result.match_vectors.setdefault(intruder, set()).add(outcome.proto_id)
        report = audit_result(graph, result)
        assert not report.exact
        assert intruder in report.prototypes[0].false_positives
        diff = audit_match_vectors(graph, result)
        assert intruder in diff
        assert outcome.proto_id in diff[intruder]["spurious"]

    def test_flags_missing_vertex(self):
        graph, template = workload()
        result = run_pipeline(graph, template, 0, PipelineOptions(num_ranks=2))
        outcome = result.outcomes()[0]
        victim = next(iter(outcome.solution_vertices))
        outcome.solution_vertices.discard(victim)
        report = audit_result(graph, result)
        assert victim in report.prototypes[0].false_negatives
        assert report.worst_recall() < 1.0
