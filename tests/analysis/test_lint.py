"""Fixture-driven tests for the repro-lint framework and its rules.

Each rule gets at least one seeded-failure snippet (must fire) and one
corrected snippet (must stay silent); on top of that the suite covers
suppression comments, baseline round-trips, and a self-check that the
shipped ``src/repro`` tree is clean modulo the committed baseline.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis.lint import Baseline, all_rules, main, run_lint

REPO_ROOT = Path(__file__).resolve().parents[2]
REPO_SRC = REPO_ROOT / "src" / "repro"
COMMITTED_BASELINE = REPO_ROOT / "lint-baseline.json"


def lint_files(root, files, rules=None, baseline=None):
    """Write ``files`` (name -> source) under ``root`` and lint them."""
    paths = []
    for name, source in files.items():
        path = root / name
        path.write_text(textwrap.dedent(source))
        paths.append(path)
    return run_lint(root, rule_ids=rules, baseline=baseline, paths=paths)


def rules_fired(report):
    return {violation.rule for violation in report.violations}


class TestRegistry:
    def test_all_thirteen_rules_registered(self):
        assert set(all_rules()) == {
            "R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8",
            "R9", "R10", "R11", "R12", "R13",
        }

    def test_deep_tier_split(self):
        registry = all_rules()
        deep = {rule_id for rule_id, rule in registry.items() if rule.deep}
        assert deep == {"R9", "R10", "R11", "R12", "R13"}

    def test_default_run_excludes_deep_rules(self, tmp_path):
        report = run_lint(tmp_path)
        assert not any(r in report.rules_run for r in
                       ("R9", "R10", "R11", "R12", "R13"))
        deep_report = run_lint(tmp_path, deep=True)
        assert set(deep_report.rules_run) == set(all_rules())

    def test_rules_run_in_natural_order(self, tmp_path):
        report = run_lint(tmp_path, deep=True)
        assert report.rules_run == [
            "R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8",
            "R9", "R10", "R11", "R12", "R13",
        ]

    def test_rules_carry_rationales(self):
        for rule in all_rules().values():
            assert rule.title
            assert rule.rationale

    def test_deep_rules_carry_explain_material(self):
        for rule in all_rules().values():
            if rule.deep:
                assert rule.contract
                assert rule.example_bad
                assert rule.example_good

    def test_unknown_rule_id_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown rule"):
            run_lint(tmp_path, rule_ids=["R99"])


class TestR1OptionalIntTruthiness:
    def test_seed_field_truthiness_fires(self, tmp_path):
        report = lint_files(tmp_path, {"helpers.py": """\
            def f(options):
                if options.reload_ranks:
                    return 1
                return 0
            """}, rules=["R1"])
        assert rules_fired(report) == {"R1"}
        assert "reload_ranks" in report.violations[0].message

    def test_or_default_on_annotated_param_fires(self, tmp_path):
        report = lint_files(tmp_path, {"helpers.py": """\
            from typing import Optional

            def g(ranks_per_node: Optional[int] = None):
                return ranks_per_node or 4
            """}, rules=["R1"])
        assert rules_fired(report) == {"R1"}

    def test_annotated_options_field_fires(self, tmp_path):
        report = lint_files(tmp_path, {"knobs.py": """\
            from typing import Optional

            class TunerOptions:
                budget: Optional[int] = None

            def h(options):
                while options.budget:
                    pass
            """}, rules=["R1"])
        assert rules_fired(report) == {"R1"}

    def test_explicit_none_compare_is_clean(self, tmp_path):
        report = lint_files(tmp_path, {"helpers.py": """\
            def f(options):
                if options.reload_ranks is not None:
                    return 1
                if options.reload_ranks is not None and options.reload_ranks != 0:
                    return 2
                return 0
            """}, rules=["R1"])
        assert report.clean

    def test_value_position_last_operand_is_clean(self, tmp_path):
        # ``a if ... else b`` / trailing ``or default`` operands are
        # results, not truth tests.
        report = lint_files(tmp_path, {"helpers.py": """\
            def f(options, flag):
                return options.num_ranks if flag else options.reload_ranks
            """}, rules=["R1"])
        assert report.clean


class TestR2OptionsThreading:
    def test_unconsumed_field_fires(self, tmp_path):
        report = lint_files(tmp_path, {
            "pipeline.py": """\
                from dataclasses import dataclass

                @dataclass
                class PipelineOptions:
                    num_ranks: int = 4
                    dead_knob: bool = False
                """,
            "naive.py": """\
                def use(options):
                    return options.num_ranks
                """,
        }, rules=["R2"])
        assert rules_fired(report) == {"R2"}
        assert any("dead_knob" in v.message for v in report.violations)

    def test_call_site_keyword_parity_fires(self, tmp_path):
        report = lint_files(tmp_path, {"search.py": """\
            def drive(state, proto, cs, engine, search_prototype):
                search_prototype(state, proto, cs, engine,
                                 role_kernel=True, array_state=True)
                search_prototype(state, proto, cs, engine, role_kernel=True)
            """}, rules=["R2"])
        assert rules_fired(report) == {"R2"}
        assert any("array_state" in v.message for v in report.violations)

    def test_threaded_options_are_clean(self, tmp_path):
        report = lint_files(tmp_path, {
            "pipeline.py": """\
                from dataclasses import dataclass

                @dataclass
                class PipelineOptions:
                    num_ranks: int = 4
                    verification: bool = True
                """,
            "naive.py": """\
                def use(options):
                    return (options.num_ranks, options.verification)
                """,
        }, rules=["R2"])
        assert report.clean

    def test_site_specific_keywords_allowed(self, tmp_path):
        # ``cache``/``recycle`` legitimately differ between the pooled
        # worker and the in-process driver call sites.
        report = lint_files(tmp_path, {"search.py": """\
            def drive(state, proto, cs, engine, search_prototype, cache):
                search_prototype(state, proto, cs, engine,
                                 array_state=True, cache=cache)
                search_prototype(state, proto, cs, engine, array_state=True)
            """}, rules=["R2"])
        assert report.clean


class TestR3TracerGuard:
    def test_unguarded_span_add_fires(self, tmp_path):
        report = lint_files(tmp_path, {"lcc.py": """\
            def prune(engine, state):
                tracer = engine.tracer
                with tracer.span("lcc") as span:
                    pass
                span.add(pruned=1)
            """}, rules=["R3"])
        assert rules_fired(report) == {"R3"}

    def test_enabled_guard_is_clean(self, tmp_path):
        report = lint_files(tmp_path, {"lcc.py": """\
            def prune(engine, state):
                tracer = engine.tracer
                with tracer.span("lcc") as span:
                    pass
                if tracer.enabled:
                    span.add(pruned=1)
                tracing = tracer.enabled
                if tracing:
                    span.add(extra=2)
            """}, rules=["R3"])
        assert report.clean

    def test_only_hot_modules_checked(self, tmp_path):
        report = lint_files(tmp_path, {"report_helpers.py": """\
            def summarize(engine):
                tracer = engine.tracer
                with tracer.span("summary") as span:
                    pass
                span.add(rows=3)
            """}, rules=["R3"])
        assert report.clean


class TestR4FallbackParity:
    def test_dispatch_without_fallback_fires(self, tmp_path):
        report = lint_files(tmp_path, {"search.py": """\
            def drive(options, kernel, astate, run_array, run_dict):
                if options.array_state and kernel is not None:
                    run_array(astate)
                run_dict()
            """}, rules=["R4"])
        # the dict path runs unconditionally *after* the array path: the
        # array branch neither returns nor has an else, so both execute.
        assert rules_fired(report) == {"R4"}

    def test_else_fallback_is_clean(self, tmp_path):
        report = lint_files(tmp_path, {"search.py": """\
            def drive(options, kernel, astate, run_array, run_dict):
                if options.array_state and kernel is not None:
                    run_array(astate)
                else:
                    run_dict()
            """}, rules=["R4"])
        assert report.clean

    def test_return_then_fallback_is_clean(self, tmp_path):
        report = lint_files(tmp_path, {"search.py": """\
            def drive(options, kernel, astate, run_array, run_dict):
                if options.array_state and kernel is not None:
                    return run_array(astate)
                return run_dict()
            """}, rules=["R4"])
        assert report.clean

    def test_dict_enumeration_on_array_branch_fires(self, tmp_path):
        report = lint_files(tmp_path, {"search.py": """\
            def verify(prototype, state, astate, enumerate_matches):
                if astate is not None:
                    matches = list(enumerate_matches(prototype, state))
                    return matches
                return []
            """}, rules=["R4"])
        assert rules_fired(report) == {"R4"}

    def test_array_enumerator_on_array_branch_is_clean(self, tmp_path):
        report = lint_files(tmp_path, {"search.py": """\
            def verify(prototype, state, astate, enumerate_matches,
                       enumerate_matches_array):
                if astate is not None:
                    return enumerate_matches_array(prototype, astate)
                return list(enumerate_matches(prototype, state))
            """}, rules=["R4"])
        # the dict call sits on the fallback side of the dispatch
        assert report.clean


class TestR5HotLoopHygiene:
    def test_python_loop_over_csr_array_fires(self, tmp_path):
        report = lint_files(tmp_path, {"kernels.py": """\
            def scan(csr):
                total = 0
                for v in csr.indices:
                    total += v
                return total
            """}, rules=["R5"])
        assert rules_fired(report) == {"R5"}

    def test_np_append_in_loop_fires(self, tmp_path):
        report = lint_files(tmp_path, {"arraystate.py": """\
            import numpy as np

            def grow():
                out = np.array([], dtype=float)
                for i in range(3):
                    out = np.append(out, [i])
                return out
            """}, rules=["R5"])
        assert rules_fired(report) == {"R5"}

    def test_object_dtype_fires(self, tmp_path):
        report = lint_files(tmp_path, {"nlcc.py": """\
            import numpy as np

            def frontier():
                return np.empty(4, dtype=object)
            """}, rules=["R5"])
        assert rules_fired(report) == {"R5"}

    def test_vectorized_code_is_clean(self, tmp_path):
        report = lint_files(tmp_path, {"kernels.py": """\
            import numpy as np

            def scan(csr, rows):
                total = int(csr.indices.sum())
                for row in rows.tolist():
                    total += row
                return total + int(np.count_nonzero(csr.vertex_active))
            """}, rules=["R5"])
        assert report.clean

    def test_cold_modules_not_checked(self, tmp_path):
        report = lint_files(tmp_path, {"report_helpers.py": """\
            def scan(csr):
                return [v for v in csr.indices]
            """}, rules=["R5"])
        assert report.clean


class TestR6SharedMemoryLifecycle:
    def test_direct_construction_fires(self, tmp_path):
        report = lint_files(tmp_path, {"pool_helpers.py": """\
            from multiprocessing.shared_memory import SharedMemory

            def make():
                return SharedMemory(create=True, size=64)
            """}, rules=["R6"])
        assert rules_fired(report) == {"R6"}

    def test_attach_by_name_fires(self, tmp_path):
        report = lint_files(tmp_path, {"parallel.py": """\
            from multiprocessing import shared_memory

            def attach(name):
                return shared_memory.SharedMemory(name=name)
            """}, rules=["R6"])
        assert rules_fired(report) == {"R6"}

    def test_lifecycle_wrapper_module_is_exempt(self, tmp_path):
        report = lint_files(tmp_path, {"shm.py": """\
            from multiprocessing.shared_memory import SharedMemory

            def make():
                return SharedMemory(create=True, size=64)
            """}, rules=["R6"])
        assert report.clean

    def test_wrapper_api_use_is_clean(self, tmp_path):
        report = lint_files(tmp_path, {"parallel.py": """\
            from repro.runtime.shm import SharedGraphCsr, attach_shared_csr

            def share(csr, handle, graph):
                owned = SharedGraphCsr(csr)
                return owned, attach_shared_csr(handle, graph)
            """}, rules=["R6"])
        assert report.clean


class TestR7BatchedTemplateExecution:
    def test_pipeline_loop_over_templates_fires(self, tmp_path):
        report = lint_files(tmp_path, {"census.py": """\
            def census(graph, templates, options, run_pipeline):
                results = []
                for template in templates:
                    results.append(run_pipeline(graph, template, 0, options))
                return results
            """}, rules=["R7"])
        assert rules_fired(report) == {"R7"}
        assert "core/batch.py" in report.violations[0].message

    def test_templateish_iterable_fires(self, tmp_path):
        # the hint can sit on the iterated expression instead of the target
        report = lint_files(tmp_path, {"sweep.py": """\
            def sweep(graph, library, options, run_pipeline):
                for entry in library.motif_queries:
                    run_pipeline(graph, entry.template, entry.k, options)
            """}, rules=["R7"])
        assert rules_fired(report) == {"R7"}

    def test_non_template_loop_is_clean(self, tmp_path):
        # repeating one search across seeds is not a template sweep
        report = lint_files(tmp_path, {"repeat.py": """\
            def repeat(graph, t, options, seeds, run_pipeline):
                for seed in seeds:
                    run_pipeline(graph, t, 0, options, seed=seed)
            """}, rules=["R7"])
        assert report.clean

    def test_loop_without_run_pipeline_is_clean(self, tmp_path):
        report = lint_files(tmp_path, {"compile.py": """\
            def compile_all(templates, compile_role_kernel):
                return [compile_role_kernel(t.graph) for t in templates]

            def walk(templates, visit):
                for template in templates:
                    visit(template)
            """}, rules=["R7"])
        assert report.clean

    def test_batch_executor_module_is_exempt(self, tmp_path):
        report = lint_files(tmp_path, {"batch.py": """\
            def run_batch(graph, queries, options, run_pipeline):
                for query in queries:
                    run_pipeline(graph, query.template, query.k, options)
            """}, rules=["R7"])
        assert report.clean

    def test_suppression_comment_is_honored(self, tmp_path):
        report = lint_files(tmp_path, {"census.py": """\
            def census(graph, templates, options, run_pipeline):
                # the sequential baseline the benchmark measures against
                for template in templates:  # repro-lint: ignore[R7]
                    run_pipeline(graph, template, 0, options)
            """}, rules=["R7"])
        assert report.clean
        assert report.suppressed == 1


class TestR8MetricAccumulation:
    def test_dict_counter_augassign_fires(self, tmp_path):
        # the kernels.py bug class: a module-level stats dict
        report = lint_files(tmp_path, {"kernels.py": """\
            _CACHE_STATS = {"hits": 0, "misses": 0}

            def cached(key, cache, build):
                if key in cache:
                    _CACHE_STATS["hits"] += 1
                    return cache[key]
                _CACHE_STATS["misses"] += 1
                cache[key] = build(key)
                return cache[key]
            """}, rules=["R8"])
        assert rules_fired(report) == {"R8"}
        assert len(report.violations) == 2
        assert "metrics.counter" in report.violations[0].message

    def test_attribute_counter_augassign_fires(self, tmp_path):
        report = lint_files(tmp_path, {"nlcc.py": """\
            def check(cache, result):
                cache.hits += len(result.recycled)
            """}, rules=["R8"])
        assert rules_fired(report) == {"R8"}

    def test_registry_handle_is_clean(self, tmp_path):
        report = lint_files(tmp_path, {"kernels.py": """\
            def cached(key, cache, build, metrics):
                hits = metrics.counter("cache.kernel.hits")
                if key in cache:
                    hits.inc()
                    return cache[key]
                metrics.counter("cache.kernel.misses").inc()
                cache[key] = build(key)
                return cache[key]
            """}, rules=["R8"])
        assert report.clean

    def test_non_metric_accumulation_is_clean(self, tmp_path):
        # ordinary accumulators (offsets, degrees) are not metrics
        report = lint_files(tmp_path, {"arraystate.py": """\
            def fold(totals, rows):
                for row in rows:
                    totals["offset"] += row
                    totals.seen += 1
            """}, rules=["R8"])
        assert report.clean

    def test_only_hot_modules_checked(self, tmp_path):
        # the dict-state NlccCache (state.py) keeps its plain counters
        report = lint_files(tmp_path, {"state.py": """\
            class NlccCache:
                def record(self, recycled):
                    self.hits += recycled
            """}, rules=["R8"])
        assert report.clean


class TestSuppression:
    def test_inline_suppression(self, tmp_path):
        report = lint_files(tmp_path, {"helpers.py": """\
            def f(options):
                if options.reload_ranks:  # repro-lint: ignore[R1]
                    return 1
                return 0
            """}, rules=["R1"])
        assert report.clean
        assert report.suppressed == 1

    def test_comment_line_above(self, tmp_path):
        report = lint_files(tmp_path, {"helpers.py": """\
            def f(options):
                # repro-lint: ignore[R1]
                if options.reload_ranks:
                    return 1
                return 0
            """}, rules=["R1"])
        assert report.clean
        assert report.suppressed == 1

    def test_suppression_is_rule_specific(self, tmp_path):
        report = lint_files(tmp_path, {"helpers.py": """\
            def f(options):
                if options.reload_ranks:  # repro-lint: ignore[R3]
                    return 1
                return 0
            """}, rules=["R1"])
        assert rules_fired(report) == {"R1"}

    def test_bare_ignore_suppresses_everything(self, tmp_path):
        report = lint_files(tmp_path, {"helpers.py": """\
            def f(options):
                if options.reload_ranks:  # repro-lint: ignore
                    return 1
                return 0
            """}, rules=["R1"])
        assert report.clean

    def test_multiline_statement_first_line_comment(self, tmp_path):
        # the violation anchors to the continuation line; the trailing
        # comment on the statement's *first* line must cover it
        report = lint_files(tmp_path, {"helpers.py": """\
            def f(options):
                if (options.max_prototypes is not None  # repro-lint: ignore[R1]
                        and options.reload_ranks):
                    return 1
                return 0
            """}, rules=["R1"])
        assert report.clean, [v.render() for v in report.violations]
        assert report.suppressed == 1

    def test_multiline_statement_comment_line_above(self, tmp_path):
        report = lint_files(tmp_path, {"helpers.py": """\
            def f(options):
                # repro-lint: ignore[R1]
                if (options.max_prototypes is not None
                        and options.reload_ranks):
                    return 1
                return 0
            """}, rules=["R1"])
        assert report.clean, [v.render() for v in report.violations]
        assert report.suppressed == 1

    def test_multiline_suppression_stays_rule_specific(self, tmp_path):
        report = lint_files(tmp_path, {"helpers.py": """\
            def f(options):
                if (options.max_prototypes is not None  # repro-lint: ignore[R3]
                        and options.reload_ranks):
                    return 1
                return 0
            """}, rules=["R1"])
        assert rules_fired(report) == {"R1"}


class TestBaseline:
    def _dirty_report(self, tmp_path):
        return lint_files(tmp_path, {"helpers.py": """\
            def f(options):
                if options.reload_ranks:
                    return 1
                if options.max_prototypes:
                    return 2
                return 0
            """}, rules=["R1"])

    def test_round_trip_silences_known_findings(self, tmp_path):
        report = self._dirty_report(tmp_path)
        assert len(report.violations) == 2
        baseline = Baseline.from_violations(report.violations)
        path = tmp_path / "base.json"
        baseline.save(path)
        reloaded = Baseline.load(path)
        again = run_lint(
            tmp_path, rule_ids=["R1"], baseline=reloaded,
            paths=[tmp_path / "helpers.py"],
        )
        assert again.clean
        assert len(again.baselined) == 2

    def test_baseline_is_line_content_keyed(self, tmp_path):
        report = self._dirty_report(tmp_path)
        baseline = Baseline.from_violations(report.violations)
        # a *new* violation on a different source line is not absorbed
        (tmp_path / "helpers.py").write_text(textwrap.dedent("""\
            def f(options):
                if options.reload_ranks:
                    return 1
                if options.max_prototypes:
                    return 2
                if options.distinct_matches:
                    return 3
                return 0
            """))
        again = run_lint(
            tmp_path, rule_ids=["R1"], baseline=baseline,
            paths=[tmp_path / "helpers.py"],
        )
        assert len(again.violations) == 1
        assert "distinct_matches" in again.violations[0].message
        assert len(again.baselined) == 2

    def test_saved_file_is_versioned_json(self, tmp_path):
        report = self._dirty_report(tmp_path)
        path = tmp_path / "base.json"
        Baseline.from_violations(report.violations).save(path)
        document = json.loads(path.read_text())
        assert document["version"] == 1
        assert all({"rule", "path", "snippet", "count"} <= set(e)
                   for e in document["entries"])

    def test_saved_file_is_byte_stable_and_sorted(self, tmp_path):
        report = self._dirty_report(tmp_path)
        forward = tmp_path / "forward.json"
        Baseline.from_violations(report.violations).save(forward)
        # same findings in reverse insertion order -> identical bytes
        backward = tmp_path / "backward.json"
        Baseline.from_violations(
            list(reversed(report.violations))
        ).save(backward)
        assert forward.read_bytes() == backward.read_bytes()
        # a load/save round trip is also byte-stable
        roundtrip = tmp_path / "roundtrip.json"
        Baseline.load(forward).save(roundtrip)
        assert roundtrip.read_bytes() == forward.read_bytes()
        document = json.loads(forward.read_text())
        keys = [(e["rule"], e["path"], e["snippet"])
                for e in document["entries"]]
        assert keys == sorted(keys)


class TestParseResilience:
    def test_syntax_error_becomes_finding_not_crash(self, tmp_path):
        (tmp_path / "broken.py").write_text("def f(:\n")
        report = run_lint(tmp_path, paths=[tmp_path / "broken.py"])
        assert [v.rule for v in report.violations] == ["parse"]


class TestRunnerCli:
    def _seed(self, tmp_path):
        target = tmp_path / "helpers.py"
        target.write_text(textwrap.dedent("""\
            def f(options):
                if options.reload_ranks:
                    return 1
                return 0
            """))
        return target

    def test_exit_one_on_findings(self, tmp_path, capsys):
        self._seed(tmp_path)
        assert main([str(tmp_path)]) == 1
        assert "R1" in capsys.readouterr().out

    def test_json_output(self, tmp_path, capsys):
        self._seed(tmp_path)
        assert main([str(tmp_path), "--json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["summary"]["new"] == 1
        assert document["summary"]["by_rule"] == {"R1": 1}

    def test_rule_filter(self, tmp_path, capsys):
        self._seed(tmp_path)
        assert main([str(tmp_path), "--rule", "R3"]) == 0
        capsys.readouterr()

    def test_write_then_check_baseline(self, tmp_path, capsys):
        self._seed(tmp_path)
        base = tmp_path / "base.json"
        assert main([
            str(tmp_path), "--baseline", str(base), "--write-baseline",
        ]) == 0
        capsys.readouterr()
        assert main([str(tmp_path), "--baseline", str(base)]) == 0
        assert "baselined" in capsys.readouterr().out

    def test_missing_baseline_is_usage_error(self, tmp_path, capsys):
        self._seed(tmp_path)
        code = main([str(tmp_path), "--baseline", str(tmp_path / "no.json")])
        assert code == 2
        assert "baseline" in capsys.readouterr().err

    def test_unknown_rule_is_usage_error(self, tmp_path, capsys):
        self._seed(tmp_path)
        assert main([str(tmp_path), "--rule", "R99"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("R1", "R2", "R3", "R4", "R5"):
            assert rule_id in out
        assert "R13 [deep]" in out

    def test_explain_prints_contract_and_examples(self, capsys):
        assert main(["--explain", "R9"]) == 0
        out = capsys.readouterr().out
        assert "shm-use-after-release" in out
        assert "contract:" in out
        assert "bad:" in out
        assert "good:" in out

    def test_explain_shallow_rule_falls_back_to_docstring(self, capsys):
        assert main(["--explain", "R1"]) == 0
        out = capsys.readouterr().out
        assert "R1" in out
        assert "contract:" in out

    def test_explain_unknown_rule_is_usage_error(self, capsys):
        assert main(["--explain", "R99"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_deep_flag_runs_interprocedural_rules(self, tmp_path, capsys):
        self._seed(tmp_path)
        assert main([str(tmp_path), "--deep", "--json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert "R9" in document["rules_run"]
        assert "R13" in document["rules_run"]


class TestSelfCheck:
    """The shipped tree must satisfy its own linter."""

    def test_src_repro_is_clean_modulo_baseline(self):
        baseline = Baseline.load(COMMITTED_BASELINE)
        report = run_lint(REPO_SRC, baseline=baseline)
        assert report.clean, [v.to_json() for v in report.violations]

    def test_baseline_has_no_r1_or_r3_debt(self):
        document = json.loads(COMMITTED_BASELINE.read_text())
        rules = {entry["rule"] for entry in document["entries"]}
        assert not rules & {"R1", "R3"}
