"""Fixture-driven tests for the interprocedural rules R9–R13.

Two layers: the committed known-bad files under
``tests/analysis/fixtures/`` (shared with the CI analyzer self-check)
must each fire their rule, and inline tmp-path snippets pin down the
per-rule edge cases — flow sensitivity, helper-mediated releases,
construction exemptions, interprocedural dtype propagation, transitive
options neediness.  A final self-check runs the full deep pass over the
shipped ``src/repro`` tree, which must be clean.
"""

import textwrap
from pathlib import Path

from repro.analysis.lint import run_lint

REPO_ROOT = Path(__file__).resolve().parents[2]
REPO_SRC = REPO_ROOT / "src" / "repro"
FIXTURES = Path(__file__).resolve().parent / "fixtures"

DEEP_RULES = ("R9", "R10", "R11", "R12", "R13")

FIXTURE_FOR_RULE = {
    "R9": "bad_shm_release.py",
    "R10": "bad_resident_mutation.py",
    "R11": "bad_pickles_drop.py",
    "R12": "bad_dtype_escape.py",
    "R13": "bad_options_drop.py",
}


def lint_files(root, files, rules=None):
    paths = []
    for name, source in files.items():
        path = root / name
        path.write_text(textwrap.dedent(source))
        paths.append(path)
    return run_lint(root, rule_ids=rules, paths=paths)


def rules_fired(report):
    return {violation.rule for violation in report.violations}


def lines_flagged(report, rule):
    return sorted(
        violation.line for violation in report.violations
        if violation.rule == rule
    )


class TestFixtureFiles:
    """The committed fixtures drive both pytest and the CI self-check."""

    def test_every_deep_rule_fires_on_its_fixture(self):
        for rule, name in FIXTURE_FOR_RULE.items():
            path = FIXTURES / name
            report = run_lint(FIXTURES, rule_ids=[rule], paths=[path])
            fired = rules_fired(report)
            assert fired == {rule}, f"{name}: expected {rule}, got {fired}"

    def test_fixture_directory_full_deep_run(self):
        report = run_lint(FIXTURES, deep=True)
        assert set(DEEP_RULES) <= rules_fired(report)

    def test_ok_functions_stay_silent(self):
        # every fixture also carries corrected ok_* code; none of the
        # violations may anchor inside it
        report = run_lint(FIXTURES, deep=True)
        for violation in report.violations:
            source = (FIXTURES / violation.path).read_text().splitlines()
            enclosing = [
                line for line in source[:violation.line]
                if line.startswith("def ")
            ]
            assert not (
                enclosing and enclosing[-1].startswith("def ok_")
            ), violation.render()


class TestR9ShmUseAfterRelease:
    def test_flow_sensitive_branch_release(self, tmp_path):
        report = lint_files(tmp_path, {"pool.py": """\
            from repro.runtime.shm import share_csr

            def f(csr, early):
                shared = share_csr(csr)
                if early:
                    shared.close()
                return shared.handle
            """}, rules=["R9"])
        assert rules_fired(report) == {"R9"}

    def test_release_on_no_path_is_clean(self, tmp_path):
        report = lint_files(tmp_path, {"pool.py": """\
            from repro.runtime.shm import share_csr

            def f(csr):
                shared = share_csr(csr)
                handle = shared.handle
                total = shared.nbytes
                shared.close()
                return handle, total
            """}, rules=["R9"])
        assert report.clean, [v.render() for v in report.violations]

    def test_helper_close_is_interprocedural(self, tmp_path):
        report = lint_files(tmp_path, {"pool.py": """\
            from repro.runtime.shm import share_csr

            def teardown(segment):
                segment.close()

            def f(csr):
                shared = share_csr(csr)
                teardown(shared)
                return shared.handle
            """}, rules=["R9"])
        assert rules_fired(report) == {"R9"}

    def test_transitive_helper_close(self, tmp_path):
        report = lint_files(tmp_path, {"pool.py": """\
            from repro.runtime.shm import share_csr

            def inner(seg):
                seg.unlink()

            def outer(seg):
                inner(seg)

            def f(csr):
                shared = share_csr(csr)
                outer(shared)
                return shared.handle
            """}, rules=["R9"])
        assert rules_fired(report) == {"R9"}

    def test_derived_view_flagged_only_on_dereference(self, tmp_path):
        report = lint_files(tmp_path, {"pool.py": """\
            from repro.runtime.shm import share_csr

            def f(csr):
                shared = share_csr(csr)
                view = shared.view
                size = shared.nbytes
                shared.close()
                return size, view.indptr
            """}, rules=["R9"])
        # the dereference of `view` fires; returning the scalar `size`
        # does not
        assert len(report.violations) == 1
        assert "view" in report.violations[0].message

    def test_reclose_is_idempotent_not_a_use(self, tmp_path):
        report = lint_files(tmp_path, {"pool.py": """\
            from repro.runtime.shm import share_csr

            def f(csr):
                shared = share_csr(csr)
                shared.close()
                shared.close()
                shared.unlink()
            """}, rules=["R9"])
        assert report.clean, [v.render() for v in report.violations]

    def test_rebind_starts_fresh_lifetime(self, tmp_path):
        report = lint_files(tmp_path, {"pool.py": """\
            from repro.runtime.shm import share_csr

            def f(csr):
                shared = share_csr(csr)
                shared.close()
                shared = share_csr(csr)
                return shared.handle
            """}, rules=["R9"])
        assert report.clean, [v.render() for v in report.violations]

    def test_loop_reuse_after_rebind_is_clean(self, tmp_path):
        report = lint_files(tmp_path, {"pool.py": """\
            from repro.runtime.shm import share_csr

            def f(csrs):
                out = []
                for csr in csrs:
                    shared = share_csr(csr)
                    out.append(shared.nbytes)
                    shared.close()
                return out
            """}, rules=["R9"])
        assert report.clean, [v.render() for v in report.violations]

    def test_with_exit_releases(self, tmp_path):
        report = lint_files(tmp_path, {"pool.py": """\
            from repro.runtime.shm import share_csr

            def f(csr):
                with share_csr(csr) as shared:
                    handle = shared.handle
                return shared.nbytes
            """}, rules=["R9"])
        assert rules_fired(report) == {"R9"}

    def test_wrapper_module_is_exempt(self, tmp_path):
        report = lint_files(tmp_path, {"shm.py": """\
            from multiprocessing import shared_memory

            def owner_release(segment):
                segment.close()
                segment.unlink()

            def roundtrip(n):
                seg = shared_memory.SharedMemory(create=True, size=n)
                seg.close()
                return seg.name
            """}, rules=["R9"])
        assert report.clean


class TestR10ResidentImmutability:
    def test_memoized_csr_store_fires(self, tmp_path):
        report = lint_files(tmp_path, {"helpers.py": """\
            from repro.core.arraystate import csr_of

            def f(graph):
                csr = csr_of(graph)
                csr.degrees[0] = 1
            """}, rules=["R10"])
        assert rules_fired(report) == {"R10"}

    def test_annotated_param_store_fires(self, tmp_path):
        report = lint_files(tmp_path, {"helpers.py": """\
            def f(csr: "GraphCsr"):
                csr.indptr = None
            """}, rules=["R10"])
        assert rules_fired(report) == {"R10"}

    def test_construction_scope_is_exempt(self, tmp_path):
        report = lint_files(tmp_path, {"helpers.py": """\
            from repro.core.arraystate import GraphCsr

            def induced(parent):
                view = GraphCsr.__new__(GraphCsr)
                view.indptr = parent.sliced_indptr()
                view.indptr.setflags(write=False)
                return view
            """}, rules=["R10"])
        assert report.clean, [v.render() for v in report.violations]

    def test_refreeze_allowed_thaw_fires(self, tmp_path):
        report = lint_files(tmp_path, {"helpers.py": """\
            from repro.core.arraystate import csr_of

            def f(graph):
                csr = csr_of(graph)
                csr.indptr.flags.writeable = False
                csr.indices.flags.writeable = True
            """}, rules=["R10"])
        assert len(report.violations) == 1
        assert "thaw" in report.violations[0].message

    def test_mutable_search_state_untouched(self, tmp_path):
        # ArraySearchState is mutable by design; R10 must not flag it
        report = lint_files(tmp_path, {"helpers.py": """\
            from repro.core.arraystate import ArraySearchState

            def f(state: "ArraySearchState"):
                state.role_mask[0] = 3
                state.vertex_active[1] = False
            """}, rules=["R10"])
        assert report.clean


class TestR11PicklesEmptyExport:
    def test_worker_mutation_without_export_fires(self, tmp_path):
        report = lint_files(tmp_path, {"workers.py": """\
            from repro.runtime.metrics import MetricsRegistry

            def _task(payload):
                registry = MetricsRegistry()
                registry.incr("steps", 1)
                return {"ok": True}

            def run(pool, payloads):
                futures = [pool.submit(_task, p) for p in payloads]
                merged = collect(futures)
                merged.merge(None)
                return merged
            """}, rules=["R11"])
        assert rules_fired(report) == {"R11"}
        assert "registry" in report.violations[0].message

    def test_export_in_payload_is_clean(self, tmp_path):
        report = lint_files(tmp_path, {"workers.py": """\
            from repro.runtime.metrics import MetricsRegistry

            def _task(payload):
                registry = MetricsRegistry()
                registry.incr("steps", 1)
                return {"ok": True, "metrics": registry.export()}

            def run(pool, metrics, payloads):
                futures = [pool.submit(_task, p) for p in payloads]
                for future in futures:
                    metrics.merge(future.result()["metrics"])
            """}, rules=["R11"])
        assert report.clean, [v.render() for v in report.violations]

    def test_parent_never_merges_fires(self, tmp_path):
        report = lint_files(tmp_path, {"workers.py": """\
            from repro.runtime.metrics import MetricsRegistry

            def _task(payload):
                registry = MetricsRegistry()
                registry.incr("steps", 1)
                return {"metrics": registry.export()}

            def run(pool, payloads):
                return [pool.submit(_task, p) for p in payloads]
            """}, rules=["R11"])
        assert rules_fired(report) == {"R11"}
        assert any("merge" in v.message for v in report.violations)

    def test_non_worker_registry_untouched(self, tmp_path):
        # parent-side registries live in-process; no export needed
        report = lint_files(tmp_path, {"driver.py": """\
            from repro.runtime.metrics import MetricsRegistry

            def report_run():
                registry = MetricsRegistry()
                registry.incr("runs", 1)
                return registry
            """}, rules=["R11"])
        assert report.clean


class TestR12DtypeContract:
    def test_float_default_into_int_slot_fires(self, tmp_path):
        report = lint_files(tmp_path, {"build.py": """\
            import numpy as np
            from repro.core.arraystate import GraphCsr

            def build(n, indptr, indices):
                degrees = np.zeros(n)
                return GraphCsr(
                    indptr=indptr, indices=indices, degrees=degrees
                )
            """}, rules=["R12"])
        assert rules_fired(report) == {"R12"}
        assert "degrees" in report.violations[0].message

    def test_interprocedural_float_return_fires(self, tmp_path):
        report = lint_files(tmp_path, {"build.py": """\
            import numpy as np
            from repro.core.arraystate import GraphCsr

            def make(n):
                return np.zeros(n)

            def build(n, indptr, indices):
                degrees = make(n)
                return GraphCsr(
                    indptr=indptr, indices=indices, degrees=degrees
                )
            """}, rules=["R12"])
        assert rules_fired(report) == {"R12"}

    def test_explicit_int_dtype_is_clean(self, tmp_path):
        report = lint_files(tmp_path, {"build.py": """\
            import numpy as np
            from repro.core.arraystate import GraphCsr

            def build(n, indptr, indices):
                degrees = np.zeros(n, dtype=np.int64)
                return GraphCsr(
                    indptr=indptr, indices=indices, degrees=degrees
                )
            """}, rules=["R12"])
        assert report.clean, [v.render() for v in report.violations]

    def test_module_alias_dtype_is_not_flagged(self, tmp_path):
        # dtype=_U64 is unrecognized, not float — must stay silent
        report = lint_files(tmp_path, {"build.py": """\
            import numpy as np
            from repro.core.arraystate import GraphCsr

            _U64 = np.uint64

            def build(n, indptr, indices):
                degrees = np.zeros(n, dtype=_U64)
                return GraphCsr(
                    indptr=indptr, indices=indices, degrees=degrees
                )
            """}, rules=["R12"])
        assert report.clean, [v.render() for v in report.violations]

    def test_object_dtype_escape_fires(self, tmp_path):
        report = lint_files(tmp_path, {"build.py": """\
            import numpy as np

            def boxes(n):
                return np.empty(n, dtype=object)
            """}, rules=["R12"])
        assert rules_fired(report) == {"R12"}
        assert "object" in report.violations[0].message

    def test_float_index_fires(self, tmp_path):
        report = lint_files(tmp_path, {"build.py": """\
            def pick(order, n):
                mid = n / 2
                return order[mid]
            """}, rules=["R12"])
        assert rules_fired(report) == {"R12"}

    def test_floor_division_index_is_clean(self, tmp_path):
        report = lint_files(tmp_path, {"build.py": """\
            def pick(order, n):
                mid = n // 2
                return order[mid]
            """}, rules=["R12"])
        assert report.clean


class TestR13OptionsThreading:
    def test_dropped_options_through_chain_fires(self, tmp_path):
        report = lint_files(tmp_path, {"drivers.py": """\
            def leaf(graph, options=None):
                if options is not None and options.budget is not None:
                    return options.budget
                return 0

            def middle(graph, options=None):
                return leaf(graph, options=options)

            def driver(graph, options):
                return middle(graph)
            """}, rules=["R13"])
        assert rules_fired(report) == {"R13"}
        assert "middle" in report.violations[0].message

    def test_forwarded_options_is_clean(self, tmp_path):
        report = lint_files(tmp_path, {"drivers.py": """\
            def leaf(graph, options=None):
                if options is not None and options.budget is not None:
                    return options.budget
                return 0

            def driver(graph, options):
                return leaf(graph, options=options)
            """}, rules=["R13"])
        assert report.clean, [v.render() for v in report.violations]

    def test_positional_forwarding_is_clean(self, tmp_path):
        report = lint_files(tmp_path, {"drivers.py": """\
            def leaf(graph, options=None):
                return options.budget if options else 0

            def driver(graph, options):
                return leaf(graph, options)
            """}, rules=["R13"])
        assert report.clean, [v.render() for v in report.violations]

    def test_callee_ignoring_options_is_clean(self, tmp_path):
        # the callee has an options param but never reads a field —
        # dropping it changes nothing observable
        report = lint_files(tmp_path, {"drivers.py": """\
            def helper(graph, options=None):
                return graph

            def driver(graph, options):
                return helper(graph)
            """}, rules=["R13"])
        assert report.clean, [v.render() for v in report.violations]

    def test_caller_without_options_in_scope_is_clean(self, tmp_path):
        # nothing to forward: the caller never had options
        report = lint_files(tmp_path, {"drivers.py": """\
            def leaf(graph, options=None):
                return options.budget if options else 0

            def entry(graph):
                return leaf(graph)
            """}, rules=["R13"])
        assert report.clean, [v.render() for v in report.violations]


class TestDeepSelfCheck:
    """The shipped tree must satisfy its own interprocedural analyzer."""

    def test_src_repro_deep_run_is_clean(self):
        report = run_lint(REPO_SRC, deep=True)
        assert report.clean, [v.to_json() for v in report.violations]
