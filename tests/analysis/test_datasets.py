"""Tests for the Table 1-style dataset summary."""

from repro.analysis import dataset_row, datasets_table, standard_datasets
from repro.graph import from_edges


class TestDatasetRow:
    def test_row_fields(self):
        graph = from_edges([(0, 1), (1, 2)], labels={0: 1, 1: 1, 2: 2})
        row = dataset_row("tiny", graph, kind="Real")
        assert row[0] == "tiny"
        assert row[1] == "Real"
        assert row[2] == "3"   # |V|
        assert row[3] == "4"   # 2|E|

    def test_degree_stats_formatted(self):
        graph = from_edges([(0, 1), (0, 2), (0, 3)])
        row = dataset_row("star", graph)
        assert row[4] == "3"        # d_max
        assert row[5] == "1.5"      # d_avg


class TestDatasetsTable:
    def test_table_contains_all_names(self):
        graphs = {
            "a": from_edges([(0, 1)]),
            "b": from_edges([(0, 1), (1, 2)]),
        }
        table = datasets_table(graphs, kinds={"a": "Real"})
        assert "a" in table and "b" in table
        assert "Real" in table and "Synth." in table

    def test_standard_datasets_cover_paper_suite(self):
        graphs = standard_datasets(seed=1)
        for name in ("WDC-like", "Reddit-like", "IMDb-like", "R-MAT s10",
                     "citeseer", "mico", "patent", "youtube", "livejournal"):
            assert name in graphs
            assert graphs[name].num_vertices > 0
