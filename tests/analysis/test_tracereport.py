"""Tests for trace loading and the attribution breakdowns."""

import json

import pytest

from repro.analysis.tracereport import (
    constraint_breakdown,
    level_breakdown,
    load_trace,
    phase_breakdown,
    render_report,
    span_tree_lines,
)
from repro.runtime.trace import Tracer


def make_tracer():
    """A small hand-built trace with known times and counters."""
    tracer = Tracer()
    with tracer.span("pipeline", template="tri", k=1, mode="bottom-up"):
        with tracer.span("level", distance=1) as level:
            level.add(
                prototypes=2, union_vertices=10, union_edges=12,
                post_lcc_vertices=20, post_lcc_edges=22,
            )
            with tracer.span("prototype", proto=1, label="k1_p0", distance=1):
                with tracer.span("lcc") as lcc:
                    lcc.add(messages=30, vertices_pruned=4)
                with tracer.span(
                    "nlcc", kind="cycle", source=0, walk_length=4
                ) as nlcc:
                    nlcc.add(
                        checked=5, cache_hits=2, tokens_launched=3,
                        completions=1, eliminated_roles=2, messages=12,
                    )
        with tracer.span("level", distance=0) as level:
            level.add(prototypes=1, union_vertices=3, union_edges=3)
    return tracer


@pytest.fixture(params=["chrome", "jsonl"])
def records(request, tmp_path):
    tracer = make_tracer()
    if request.param == "chrome":
        path = tmp_path / "t.json"
        tracer.write_chrome_trace(path)
    else:
        path = tmp_path / "t.jsonl"
        tracer.write_jsonl(path)
    return load_trace(path)


class TestLoadTrace:
    def test_preorder_and_depths(self, records):
        assert [r["name"] for r in records] == [
            "pipeline", "level", "prototype", "lcc", "nlcc", "level",
        ]
        assert [r["depth"] for r in records] == [0, 1, 2, 3, 3, 1]

    def test_parent_links(self, records):
        by_id = {r["span_id"]: r for r in records}
        lcc = next(r for r in records if r["name"] == "lcc")
        assert by_id[lcc["parent_id"]]["name"] == "prototype"
        root = records[0]
        assert root["parent_id"] is None

    def test_counters_survive(self, records):
        nlcc = next(r for r in records if r["name"] == "nlcc")
        assert nlcc["counters"]["checked"] == 5
        assert nlcc["attrs"]["kind"] == "cycle"

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text("")
        assert load_trace(path) == []

    def test_object_without_trace_events_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"foo": 1}))
        with pytest.raises(ValueError):
            load_trace(path)


class TestBreakdowns:
    def test_phase_breakdown_counts_and_counters(self, records):
        phases = {b["name"]: b for b in phase_breakdown(records)}
        assert phases["level"]["count"] == 2
        assert phases["level"]["counters"]["prototypes"] == 3
        assert phases["nlcc"]["counters"]["messages"] == 12
        # self time of the pipeline excludes its levels
        pipeline = phases["pipeline"]
        assert pipeline["self_s"] <= pipeline["total_s"]

    def test_phase_breakdown_sorted_by_total(self, records):
        totals = [b["total_s"] for b in phase_breakdown(records)]
        assert totals == sorted(totals, reverse=True)

    def test_constraint_breakdown(self, records):
        rows = constraint_breakdown(records)
        assert len(rows) == 1
        row = rows[0]
        assert (row["kind"], row["source"], row["walk_length"]) == (
            "cycle", 0, 4,
        )
        assert row["checked"] == 5
        assert row["cache_hits"] == 2
        assert row["tokens_launched"] == 3
        assert row["eliminated_roles"] == 2

    def test_level_breakdown_sorted_by_distance(self, records):
        rows = level_breakdown(records)
        assert [r["distance"] for r in rows] == [0, 1]
        level1 = rows[1]
        assert level1["prototypes"] == 2
        assert level1["union_vertices"] == 10
        assert level1["post_lcc_edges"] == 22


class TestRendering:
    def test_tree_lines_respect_depth(self, records):
        all_lines = span_tree_lines(records, max_depth=None)
        shallow = span_tree_lines(records, max_depth=1)
        assert len(all_lines) == 6
        assert len(shallow) == 3
        assert all_lines[0].startswith("pipeline [")

    def test_render_report_sections(self, records):
        report = render_report(records)
        assert "== span tree" in report
        assert "== per-phase breakdown ==" in report
        assert "== per-constraint breakdown (NLCC) ==" in report
        assert "== per-level breakdown ==" in report
        assert "cycle(src=0, len=4)" in report

    def test_render_empty(self):
        assert render_report([]) == "trace is empty"


class TestPooledReparenting:
    """Worker payloads attached after the tree closed must still nest."""

    def _worker_payload(self, start, end):
        return {
            "name": "prototype",
            "attrs": {"proto": 7, "label": "k1_p7"},
            "start_s": start,
            "end_s": end,
            "counters": {"messages": 40},
            "children": [{
                "name": "lcc",
                "attrs": {},
                "start_s": start,
                "end_s": (start + end) / 2,
                "counters": {"messages": 25},
                "children": [],
            }],
        }

    def _pooled_tracer(self):
        tracer = Tracer()
        with tracer.span("pipeline", template="tri", k=1):
            with tracer.span("level", distance=1) as level:
                level.add(prototypes=1)
        level_span = tracer.roots[0].children[0]
        inner_start = level_span.start_s + (level_span.end_s - level_span.start_s) / 4
        inner_end = level_span.end_s - (level_span.end_s - level_span.start_s) / 4
        # The pool collects results after the level span already closed:
        # the payload lands as a detached root, tagged with its worker.
        tracer.attach([self._worker_payload(inner_start, inner_end)], worker=123)
        return tracer

    @pytest.fixture(params=["chrome", "jsonl"])
    def pooled_records(self, request, tmp_path):
        tracer = self._pooled_tracer()
        if request.param == "chrome":
            path = tmp_path / "pooled.json"
            tracer.write_chrome_trace(path)
        else:
            path = tmp_path / "pooled.jsonl"
            tracer.write_jsonl(path)
        return load_trace(path)

    def test_worker_span_reparented_under_enclosing_level(self, pooled_records):
        by_id = {r["span_id"]: r for r in pooled_records}
        worker = next(
            r for r in pooled_records if r["attrs"].get("worker") == 123
        )
        assert worker["parent_id"] is not None
        assert by_id[worker["parent_id"]]["name"] == "level"
        assert worker["depth"] == 2
        # the payload's own children keep their subtree
        lcc = next(r for r in pooled_records if r["name"] == "lcc")
        assert by_id[lcc["parent_id"]] is worker
        assert lcc["depth"] == 3

    def test_single_root_after_reparenting(self, pooled_records):
        roots = [r for r in pooled_records if r["parent_id"] is None]
        assert [r["name"] for r in roots] == ["pipeline"]

    def test_breakdowns_attribute_worker_time_to_the_tree(self, pooled_records):
        phases = {b["name"]: b for b in phase_breakdown(pooled_records)}
        assert phases["prototype"]["counters"]["messages"] == 40
        assert phases["lcc"]["counters"]["messages"] == 25
        # level self-time now excludes the grafted prototype span
        level = phases["level"]
        prototype = phases["prototype"]
        assert level["self_s"] <= level["total_s"] - prototype["total_s"] + 1e-9

    def test_non_worker_detached_roots_stay_roots(self, tmp_path):
        tracer = Tracer()
        with tracer.span("pipeline"):
            pass
        with tracer.span("orphan"):  # a second honest top-level span
            pass
        path = tmp_path / "two_roots.jsonl"
        tracer.write_jsonl(path)
        records = load_trace(path)
        roots = [r for r in records if r["parent_id"] is None]
        assert {r["name"] for r in roots} == {"pipeline", "orphan"}
