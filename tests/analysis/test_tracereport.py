"""Tests for trace loading and the attribution breakdowns."""

import json

import pytest

from repro.analysis.tracereport import (
    constraint_breakdown,
    level_breakdown,
    load_trace,
    phase_breakdown,
    render_report,
    span_tree_lines,
)
from repro.runtime.trace import Tracer


def make_tracer():
    """A small hand-built trace with known times and counters."""
    tracer = Tracer()
    with tracer.span("pipeline", template="tri", k=1, mode="bottom-up"):
        with tracer.span("level", distance=1) as level:
            level.add(
                prototypes=2, union_vertices=10, union_edges=12,
                post_lcc_vertices=20, post_lcc_edges=22,
            )
            with tracer.span("prototype", proto=1, label="k1_p0", distance=1):
                with tracer.span("lcc") as lcc:
                    lcc.add(messages=30, vertices_pruned=4)
                with tracer.span(
                    "nlcc", kind="cycle", source=0, walk_length=4
                ) as nlcc:
                    nlcc.add(
                        checked=5, cache_hits=2, tokens_launched=3,
                        completions=1, eliminated_roles=2, messages=12,
                    )
        with tracer.span("level", distance=0) as level:
            level.add(prototypes=1, union_vertices=3, union_edges=3)
    return tracer


@pytest.fixture(params=["chrome", "jsonl"])
def records(request, tmp_path):
    tracer = make_tracer()
    if request.param == "chrome":
        path = tmp_path / "t.json"
        tracer.write_chrome_trace(path)
    else:
        path = tmp_path / "t.jsonl"
        tracer.write_jsonl(path)
    return load_trace(path)


class TestLoadTrace:
    def test_preorder_and_depths(self, records):
        assert [r["name"] for r in records] == [
            "pipeline", "level", "prototype", "lcc", "nlcc", "level",
        ]
        assert [r["depth"] for r in records] == [0, 1, 2, 3, 3, 1]

    def test_parent_links(self, records):
        by_id = {r["span_id"]: r for r in records}
        lcc = next(r for r in records if r["name"] == "lcc")
        assert by_id[lcc["parent_id"]]["name"] == "prototype"
        root = records[0]
        assert root["parent_id"] is None

    def test_counters_survive(self, records):
        nlcc = next(r for r in records if r["name"] == "nlcc")
        assert nlcc["counters"]["checked"] == 5
        assert nlcc["attrs"]["kind"] == "cycle"

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text("")
        assert load_trace(path) == []

    def test_object_without_trace_events_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"foo": 1}))
        with pytest.raises(ValueError):
            load_trace(path)


class TestBreakdowns:
    def test_phase_breakdown_counts_and_counters(self, records):
        phases = {b["name"]: b for b in phase_breakdown(records)}
        assert phases["level"]["count"] == 2
        assert phases["level"]["counters"]["prototypes"] == 3
        assert phases["nlcc"]["counters"]["messages"] == 12
        # self time of the pipeline excludes its levels
        pipeline = phases["pipeline"]
        assert pipeline["self_s"] <= pipeline["total_s"]

    def test_phase_breakdown_sorted_by_total(self, records):
        totals = [b["total_s"] for b in phase_breakdown(records)]
        assert totals == sorted(totals, reverse=True)

    def test_constraint_breakdown(self, records):
        rows = constraint_breakdown(records)
        assert len(rows) == 1
        row = rows[0]
        assert (row["kind"], row["source"], row["walk_length"]) == (
            "cycle", 0, 4,
        )
        assert row["checked"] == 5
        assert row["cache_hits"] == 2
        assert row["tokens_launched"] == 3
        assert row["eliminated_roles"] == 2

    def test_level_breakdown_sorted_by_distance(self, records):
        rows = level_breakdown(records)
        assert [r["distance"] for r in rows] == [0, 1]
        level1 = rows[1]
        assert level1["prototypes"] == 2
        assert level1["union_vertices"] == 10
        assert level1["post_lcc_edges"] == 22


class TestRendering:
    def test_tree_lines_respect_depth(self, records):
        all_lines = span_tree_lines(records, max_depth=None)
        shallow = span_tree_lines(records, max_depth=1)
        assert len(all_lines) == 6
        assert len(shallow) == 3
        assert all_lines[0].startswith("pipeline [")

    def test_render_report_sections(self, records):
        report = render_report(records)
        assert "== span tree" in report
        assert "== per-phase breakdown ==" in report
        assert "== per-constraint breakdown (NLCC) ==" in report
        assert "== per-level breakdown ==" in report
        assert "cycle(src=0, len=4)" in report

    def test_render_empty(self):
        assert render_report([]) == "trace is empty"
