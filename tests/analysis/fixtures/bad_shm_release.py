"""Known-bad input for R9 (shm-use-after-release).

Every function here violates (or deliberately skirts) the shared-memory
lifetime contract; the analyzer self-check asserts R9 fires on this
file.  Never import this module.
"""

from repro.runtime.shm import share_csr


def helper_close(segment):
    segment.close()


def use_after_direct_close(csr):
    shared = share_csr(csr)
    view = shared.view
    shared.close()
    return view.indptr[-1]  # R9: view derived from a closed segment


def use_after_helper_close(csr):
    shared = share_csr(csr)
    helper_close(shared)
    return shared.handle  # R9: helper released it on the caller's behalf


def use_after_with_exit(csr):
    with share_csr(csr) as shared:
        handle = shared.handle
    return shared.nbytes  # R9: __exit__ released the segment


def release_on_one_branch(csr, early):
    shared = share_csr(csr)
    if early:
        shared.close()
    return shared.handle  # R9: released on the `early` path


def ok_scalar_copy_then_close(csr):
    shared = share_csr(csr)
    total = shared.nbytes  # scalar copy, safe to use later
    shared.close()
    shared.close()  # ok: close is idempotent
    return total


def ok_rebind_restarts_lifetime(csr):
    shared = share_csr(csr)
    shared.close()
    shared = share_csr(csr)  # fresh segment under the same name
    return shared.handle
