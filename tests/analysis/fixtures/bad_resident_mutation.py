"""Known-bad input for R10 (resident-state-immutability).

Post-construction stores into GraphCsr/RoleKernel state, in every shape
the rule recognizes.  Never import this module.
"""

from repro.core.arraystate import GraphCsr, csr_of
from repro.core.kernels import cached_role_kernel


class GraphCsr:  # shadows the real class: methods below are "its" methods
    def __init__(self, degrees):
        self.degrees = degrees  # ok: construction

    def decay(self, v):
        self.degrees = self.degrees - 1  # R10: store outside construction


def mutate_memoized_csr(graph):
    csr = csr_of(graph)
    csr.degrees[0] = 1  # R10: in-place store into a frozen array
    csr.indptr = None  # R10: attribute rebinding
    alias = csr.src
    alias[3] = 7  # R10: store through an alias of a resident array
    csr.indices.flags.writeable = True  # R10: thawing
    return csr


def mutate_kernel(template):
    kernel = cached_role_kernel(template)
    kernel.tables = {}  # R10: kernels are shared across processes
    return kernel


def ok_construction_scope(degrees):
    view = GraphCsr.__new__(GraphCsr)
    view.degrees = degrees  # ok: local under construction
    view.degrees.setflags(write=False)
    return view


def ok_refreeze(graph):
    csr = csr_of(graph)
    csr.indices.flags.writeable = False  # ok: freezing is the boundary
    return csr
