"""Known-bad input for R12 (dtype-contract).

Float/object escapes into integer CSR slots, including one that only a
call-graph walk can see (the helper's float return feeding a slot).
Never import this module.
"""

import numpy as np

from repro.core.arraystate import GraphCsr


def make_degrees(n):
    return np.zeros(n)  # float64 by default — the silent upcast source


def build(n, indices, indptr):
    degrees = make_degrees(n)  # interprocedural: float via helper return
    boxes = np.empty(n, dtype=object)  # R12: object-dtype escape
    csr = GraphCsr(
        indptr=indptr,
        indices=indices,
        degrees=degrees,  # R12: float into an integer slot
    )
    mid = n / 2
    return csr, boxes, indices[mid]  # R12: float-inferred index


def ok_explicit_dtypes(n, indices, indptr):
    degrees = np.zeros(n, dtype=np.int64)
    csr = GraphCsr(indptr=indptr, indices=indices, degrees=degrees)
    mid = n // 2
    return csr, indices[mid]
