"""Known-bad input for R11 (pickles-empty-export).

A worker task mutates a MetricsRegistry and returns without exporting
it; the submitting side never merges payloads.  Never import this
module.
"""

from concurrent.futures import ProcessPoolExecutor

from repro.runtime.metrics import MetricsRegistry


def _task(payload):
    registry = MetricsRegistry()
    registry.incr("steps", len(payload))
    return {"ok": True}  # R11: registry state pickles to empty, dropped


def run(payloads):
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(_task, p) for p in payloads]
        # R11 (parent side): worker metrics never merged back
    return [f.result() for f in futures]
