"""Known-bad input for R13 (options-threading-interprocedural).

A driver drops its PipelineOptions argument when calling into a chain
whose leaf reads options fields.  Never import this module.
"""


def leaf(graph, options=None):
    if options is not None and options.budget is not None:
        return options.budget
    return 0


def middle(graph, options=None):
    return leaf(graph, options=options)


def driver(graph, options):
    return middle(graph)  # R13: options silently reset to defaults


def ok_driver(graph, options):
    return middle(graph, options=options)
