"""Unit tests for the interprocedural analysis engine.

Covers the four layers the deep rules stand on: call-graph resolution
(:mod:`repro.analysis.lint.callgraph`), CFG shapes
(:mod:`repro.analysis.lint.cfg`), the worklist dataflow solver
(:mod:`repro.analysis.lint.dataflow`) and the per-function effect
summaries (:mod:`repro.analysis.lint.effects`).
"""

import ast
import textwrap

from repro.analysis.lint.callgraph import CallGraph, callgraph_of
from repro.analysis.lint.cfg import BranchMarker, build_cfg
from repro.analysis.lint.dataflow import Analysis, solve, statement_facts
from repro.analysis.lint.effects import (
    EffectsIndex,
    dtype_label,
    effects_of,
    infer_call_dtype,
    map_arguments,
)
from repro.analysis.lint.framework import Project


def project_of(tmp_path, files):
    for name, source in files.items():
        path = tmp_path / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return Project.load(tmp_path)


def func_node(source):
    tree = ast.parse(textwrap.dedent(source))
    return tree.body[0]


# ----------------------------------------------------------------------
# call graph
# ----------------------------------------------------------------------
class TestCallGraph:
    def test_local_and_imported_calls_resolve(self, tmp_path):
        project = project_of(tmp_path, {
            "a.py": """\
                from b import helper as h

                def caller():
                    local()
                    h()

                def local():
                    pass
                """,
            "b.py": """\
                def helper():
                    pass
                """,
        })
        graph = callgraph_of(project)
        sites = graph.calls_from["a.py::caller"]
        callees = {c for s in sites for c in s.callees}
        assert callees == {"a.py::local", "b.py::helper"}
        assert not any(s.external for s in sites)
        assert "a.py::caller" in graph.callers_of["b.py::helper"]

    def test_self_method_and_constructor_dispatch(self, tmp_path):
        project = project_of(tmp_path, {
            "m.py": """\
                class Widget:
                    def __init__(self):
                        self.reset()

                    def reset(self):
                        pass

                def build():
                    w = Widget()
                    w.reset()
                    return w
                """,
        })
        graph = callgraph_of(project)
        init_sites = graph.calls_from["m.py::Widget.__init__"]
        assert init_sites[0].callees == ("m.py::Widget.reset",)
        build_callees = {
            c for s in graph.calls_from["m.py::build"] for c in s.callees
        }
        # Widget() dispatches to __init__, w.reset() by receiver class
        assert build_callees == {
            "m.py::Widget.__init__", "m.py::Widget.reset",
        }

    def test_annotation_receiver_dispatch(self, tmp_path):
        project = project_of(tmp_path, {
            "m.py": """\
                class Store:
                    def get(self):
                        return 1

                def read(store: "Store"):
                    return store.get()
                """,
        })
        graph = callgraph_of(project)
        sites = graph.calls_from["m.py::read"]
        assert sites[0].callees == ("m.py::Store.get",)
        assert not sites[0].external

    def test_unknown_callee_is_external(self, tmp_path):
        project = project_of(tmp_path, {
            "m.py": """\
                import numpy as np

                def f(x):
                    return np.zeros(x)
                """,
        })
        graph = callgraph_of(project)
        sites = graph.calls_from["m.py::f"]
        assert sites[0].external
        assert sites[0].callees == ()

    def test_base_class_method_resolution(self, tmp_path):
        project = project_of(tmp_path, {
            "m.py": """\
                class Base:
                    def shared(self):
                        pass

                class Child(Base):
                    def run(self):
                        self.shared()
                """,
        })
        graph = callgraph_of(project)
        sites = graph.calls_from["m.py::Child.run"]
        assert sites[0].callees == ("m.py::Base.shared",)

    def test_reachable_from_is_transitive(self, tmp_path):
        project = project_of(tmp_path, {
            "m.py": """\
                def a():
                    b()

                def b():
                    c()

                def c():
                    pass

                def unrelated():
                    pass
                """,
        })
        graph = callgraph_of(project)
        reached = graph.reachable_from({"m.py::a"})
        assert reached == {"m.py::a", "m.py::b", "m.py::c"}

    def test_resolve_name_follows_import_alias(self, tmp_path):
        project = project_of(tmp_path, {
            "a.py": "from b import worker as w\n",
            "b.py": "def worker():\n    pass\n",
        })
        graph = callgraph_of(project)
        module = project.by_rel_path["a.py"]
        assert graph.resolve_name(module, "w") == ("b.py::worker",)

    def test_memoized_on_project_cache(self, tmp_path):
        project = project_of(tmp_path, {"m.py": "def f():\n    pass\n"})
        assert callgraph_of(project) is callgraph_of(project)
        assert isinstance(project.cache["callgraph"], CallGraph)


# ----------------------------------------------------------------------
# CFG
# ----------------------------------------------------------------------
def block_map(cfg):
    return {b.id: b for b in cfg.blocks}


class TestCfg:
    def test_straight_line_single_block(self):
        cfg = build_cfg(func_node("""\
            def f():
                a = 1
                b = 2
                return a + b
            """))
        entry = cfg.blocks[cfg.entry]
        assert len(entry.statements) == 3
        assert entry.successors == [cfg.exit]

    def test_if_else_diamond(self):
        cfg = build_cfg(func_node("""\
            def f(x):
                if x:
                    a = 1
                else:
                    a = 2
                return a
            """))
        entry = cfg.blocks[cfg.entry]
        assert isinstance(entry.statements[-1], BranchMarker)
        assert len(entry.successors) == 2
        # both arms join before the return
        joins = {
            succ
            for arm in entry.successors
            for succ in cfg.blocks[arm].successors
        }
        assert len(joins) == 1

    def test_while_loop_back_edge(self):
        cfg = build_cfg(func_node("""\
            def f(n):
                while n:
                    n -= 1
                return n
            """))
        headers = [
            b for b in cfg.blocks
            if any(isinstance(s, BranchMarker) for s in b.statements)
        ]
        assert len(headers) == 1
        header = headers[0]
        # some block loops back to the header
        assert any(
            header.id in cfg.blocks[p].successors
            for p in header.predecessors
            if p != cfg.entry
        )

    def test_return_edges_to_exit(self):
        cfg = build_cfg(func_node("""\
            def f(x):
                if x:
                    return 1
                return 2
            """))
        returners = [
            b.id for b in cfg.blocks
            if any(isinstance(s, ast.Return) for s in b.statements)
        ]
        assert len(returners) == 2
        for block_id in returners:
            assert cfg.exit in cfg.blocks[block_id].successors

    def test_try_handler_reachable_from_body(self):
        cfg = build_cfg(func_node("""\
            def f():
                try:
                    risky()
                except ValueError:
                    handle()
                return 1
            """))
        handler_blocks = [
            b for b in cfg.blocks
            if any(
                isinstance(s, ast.Expr)
                and isinstance(s.value, ast.Call)
                and getattr(s.value.func, "id", "") == "handle"
                for s in b.statements
            )
        ]
        assert handler_blocks
        assert handler_blocks[0].predecessors  # reachable


# ----------------------------------------------------------------------
# dataflow solver
# ----------------------------------------------------------------------
class _AssignedNames(Analysis):
    """Forward may-analysis: names assigned on some path so far."""

    may = True

    def transfer(self, fact, statement):
        names = set(fact)
        if isinstance(statement, ast.Assign):
            for target in statement.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        return frozenset(names)


class _MustAssigned(_AssignedNames):
    """Must-variant: names assigned on *every* path."""

    may = False


class TestDataflow:
    def test_may_union_across_branches(self):
        cfg = build_cfg(func_node("""\
            def f(c):
                if c:
                    a = 1
                else:
                    b = 2
                d = 3
            """))
        facts = solve(cfg, _AssignedNames())
        assert facts[cfg.exit] == frozenset({"a", "b", "d"})

    def test_must_intersection_across_branches(self):
        cfg = build_cfg(func_node("""\
            def f(c):
                if c:
                    a = 1
                    common = 1
                else:
                    b = 2
                    common = 2
                d = 3
            """))
        facts = solve(cfg, _MustAssigned())
        assert facts[cfg.exit] == frozenset({"common", "d"})

    def test_loop_reaches_fixed_point(self):
        cfg = build_cfg(func_node("""\
            def f(n):
                while n:
                    inside = 1
                after = 2
            """))
        facts = solve(cfg, _AssignedNames())
        assert facts[cfg.exit] >= frozenset({"inside", "after"})

    def test_statement_facts_replay_order(self):
        cfg = build_cfg(func_node("""\
            def f():
                a = 1
                b = 2
            """))
        analysis = _AssignedNames()
        pairs = statement_facts(cfg, analysis, solve(cfg, analysis))
        by_target = {
            statement.targets[0].id: fact
            for statement, fact in pairs
            if isinstance(statement, ast.Assign)
        }
        assert by_target["a"] == frozenset()
        assert by_target["b"] == frozenset({"a"})


# ----------------------------------------------------------------------
# effect summaries
# ----------------------------------------------------------------------
class TestEffects:
    def test_direct_and_transitive_closes(self, tmp_path):
        project = project_of(tmp_path, {
            "m.py": """\
                def releaser(segment):
                    segment.close()

                def delegator(seg):
                    releaser(seg)

                def keeper(seg):
                    return seg.name
                """,
        })
        effects = effects_of(project)
        assert effects.by_qname["m.py::releaser"].closes == {"segment"}
        assert effects.by_qname["m.py::delegator"].closes == {"seg"}
        assert effects.by_qname["m.py::keeper"].closes == set()

    def test_options_param_and_fields(self, tmp_path):
        project = project_of(tmp_path, {
            "m.py": """\
                def leaf(graph, options=None):
                    if options.budget:
                        return options.budget
                    return options.num_ranks
                """,
        })
        fx = effects_of(project).by_qname["m.py::leaf"]
        assert fx.options_param == "options"
        assert fx.options_fields == {"budget", "num_ranks"}

    def test_param_reads_and_writes(self, tmp_path):
        project = project_of(tmp_path, {
            "m.py": """\
                def f(state):
                    x = state.role_mask
                    state.vertex_active = x
                    state.edge_alive[0] = False
                """,
        })
        fx = effects_of(project).by_qname["m.py::f"]
        assert "role_mask" in fx.param_reads["state"]
        assert fx.param_writes["state"] == {"vertex_active", "edge_alive"}

    def test_ships_through_submit_and_initargs(self, tmp_path):
        project = project_of(tmp_path, {
            "m.py": """\
                def run(pool, task, handle, worker):
                    pool.submit(task)
                    pool.map(worker, initargs=(handle,))
                """,
        })
        fx = effects_of(project).by_qname["m.py::run"]
        assert fx.ships == {"task", "worker", "handle"}

    def test_return_dtype_through_helper(self, tmp_path):
        project = project_of(tmp_path, {
            "m.py": """\
                import numpy as np

                def floats(n):
                    return np.zeros(n)

                def ints(n):
                    return np.zeros(n, dtype=np.int64)

                def chained(n):
                    out = floats(n)
                    return out

                def divided(a, b):
                    return a / b
                """,
        })
        effects = effects_of(project)
        assert effects.by_qname["m.py::floats"].return_dtype == "float"
        assert effects.by_qname["m.py::ints"].return_dtype == "int"
        assert effects.by_qname["m.py::chained"].return_dtype == "float"
        assert effects.by_qname["m.py::divided"].return_dtype == "float"

    def test_unrecognized_dtype_keyword_is_unknown(self):
        call = ast.parse("np.zeros(n, dtype=_U64)", mode="eval").body
        assert infer_call_dtype(call) is None
        bare = ast.parse("np.zeros(n)", mode="eval").body
        assert infer_call_dtype(bare) == "float"

    def test_dtype_label_families(self):
        cases = {
            "np.int64": "int",
            "np.uint64": "uint",
            "np.float32": "float",
            "float": "float",
            "object": "object",
            "bool": "bool",
        }
        for source, expected in cases.items():
            node = ast.parse(source, mode="eval").body
            assert dtype_label(node) == expected, source

    def test_map_arguments_positional_and_keyword(self, tmp_path):
        project = project_of(tmp_path, {
            "m.py": """\
                def callee(a, b, c=None):
                    pass

                def caller(x, y, z):
                    callee(x, b=y, c=z)
                """,
        })
        graph = callgraph_of(project)
        site = graph.calls_from["m.py::caller"][0]
        callee = graph.functions["m.py::callee"]
        mapped = {
            param: arg.id for arg, param in map_arguments(site.node, callee)
        }
        assert mapped == {"a": "x", "b": "y", "c": "z"}

    def test_memoized_on_project_cache(self, tmp_path):
        project = project_of(tmp_path, {"m.py": "def f():\n    pass\n"})
        assert effects_of(project) is effects_of(project)
        assert isinstance(project.cache["effects"], EffectsIndex)
