"""Tests for metrics-snapshot loading, derived ratios and exporters."""

import json

import pytest

from repro.analysis.metricsreport import (
    derived_metrics,
    load_snapshot,
    render_report,
    to_json,
    to_prometheus,
    write_snapshot,
)
from repro.runtime.metrics import MetricsRegistry


def sample_snapshot():
    registry = MetricsRegistry()
    registry.counter("cache.nlcc.hits").inc(3)
    registry.counter("cache.nlcc.misses").inc(1)
    registry.counter("fixpoint.rounds_dense").inc(2)
    registry.counter("fixpoint.rounds_sparse").inc(6)
    registry.counter("fixpoint.rounds_adaptive_dense").inc(1)
    registry.counter("fixpoint.worklist_vertices").inc(50)
    registry.counter("fixpoint.active_vertices").inc(100)
    registry.counter("pool.busy_seconds").inc(3.0)
    registry.counter("pool.idle_seconds").inc(1.0)
    registry.gauge("shm.segment_bytes").set(4096.0)
    histogram = registry.histogram("fixpoint.worklist_size")
    for value in (0, 1, 3, 8):
        histogram.observe(value)
    return registry.snapshot()


class TestLoadSnapshot:
    def test_loads_bare_snapshot(self, tmp_path):
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps(sample_snapshot()))
        snapshot = load_snapshot(path)
        assert snapshot["counters"]["cache.nlcc.hits"] == 3.0

    def test_loads_stats_document_form(self, tmp_path):
        path = tmp_path / "stats.json"
        path.write_text(json.dumps({"metrics": sample_snapshot()}))
        snapshot = load_snapshot(path)
        assert snapshot["gauges"]["shm.segment_bytes"] == 4096.0

    def test_missing_sections_are_defaulted(self, tmp_path):
        path = tmp_path / "partial.json"
        path.write_text(json.dumps({"counters": {"c": 1.0}}))
        snapshot = load_snapshot(path)
        assert snapshot["gauges"] == {}
        assert snapshot["histograms"] == {}

    def test_rejects_non_snapshot_objects(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"matched_vertices": 7}))
        with pytest.raises(ValueError):
            load_snapshot(path)

    def test_rejects_non_object_json(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2]")
        with pytest.raises(ValueError):
            load_snapshot(path)


class TestDerivedMetrics:
    def test_headline_ratios(self):
        derived = derived_metrics(sample_snapshot())
        assert derived["nlcc_cache_hit_ratio"] == pytest.approx(0.75)
        assert derived["dense_round_fraction"] == pytest.approx(0.25)
        assert derived["adaptive_dense_rounds"] == 1.0
        assert derived["mean_worklist_density"] == pytest.approx(0.5)
        assert derived["pool_utilization"] == pytest.approx(0.75)
        assert derived["shm_segment_bytes"] == 4096.0

    def test_unrecorded_inputs_yield_none_not_zero(self):
        derived = derived_metrics({"counters": {}, "gauges": {}})
        assert derived["nlcc_cache_hit_ratio"] is None
        assert derived["mstar_memo_hit_ratio"] is None
        assert derived["dense_round_fraction"] is None
        assert derived["pool_utilization"] is None
        assert derived["shm_segment_bytes"] is None

    def test_to_json_embeds_derived_block(self):
        document = to_json(sample_snapshot())
        assert document["derived"]["nlcc_cache_hit_ratio"] == pytest.approx(0.75)
        json.dumps(document)  # round-trippable


class TestPrometheus:
    def test_counters_and_gauges(self):
        text = to_prometheus(sample_snapshot())
        assert "# TYPE repro_cache_nlcc_hits counter" in text
        assert "repro_cache_nlcc_hits 3" in text
        assert "# TYPE repro_shm_segment_bytes gauge" in text
        assert "repro_shm_segment_bytes 4096" in text

    def test_histogram_buckets_are_cumulative_log2(self):
        text = to_prometheus(sample_snapshot())
        # bucket index = bit_length(v), bound = 1 << index; observations
        # 0,1,3,8 land at indices 0,1,2,4 (bounds 0, 2, 4, 16)
        assert 'repro_fixpoint_worklist_size_bucket{le="0"} 1' in text
        assert 'repro_fixpoint_worklist_size_bucket{le="2"} 2' in text
        assert 'repro_fixpoint_worklist_size_bucket{le="4"} 3' in text
        assert 'repro_fixpoint_worklist_size_bucket{le="8"} 3' in text
        assert 'repro_fixpoint_worklist_size_bucket{le="16"} 4' in text
        assert 'le="+Inf"} 4' in text
        assert "repro_fixpoint_worklist_size_count 4" in text
        assert "repro_fixpoint_worklist_size_sum 12" in text

    def test_empty_snapshot_renders_empty(self):
        assert to_prometheus({"counters": {}, "gauges": {}}) == ""


class TestWriteSnapshot:
    def test_json_extension_writes_json_with_derived(self, tmp_path):
        path = tmp_path / "out.json"
        write_snapshot(path, sample_snapshot())
        document = json.loads(path.read_text())
        assert document["derived"]["dense_round_fraction"] == pytest.approx(0.25)

    def test_prom_extension_writes_exposition(self, tmp_path):
        path = tmp_path / "out.prom"
        write_snapshot(path, sample_snapshot())
        assert "# TYPE repro_pool_busy_seconds counter" in path.read_text()


class TestRenderReport:
    def test_report_sections(self):
        report = render_report(sample_snapshot())
        assert "== derived ==" in report
        assert "dense_round_fraction" in report
        assert "== counters ==" in report
        assert "== gauges ==" in report
        assert "== histograms ==" in report
        # _seconds counters format as durations, not raw floats
        assert "pool.busy_seconds" in report

    def test_inapplicable_ratios_are_dropped_from_derived_table(self):
        report = render_report(
            {"counters": {"fixpoint.rounds_dense": 1.0}, "gauges": {},
             "histograms": {}}
        )
        assert "kernel_cache_hit_ratio" not in report

    def test_empty_snapshot(self):
        report = render_report({"counters": {}, "gauges": {}, "histograms": {}})
        assert report == "metrics snapshot is empty"
