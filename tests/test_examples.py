"""Smoke tests: every example script runs end to end.

Each example is executed as a subprocess (exactly how a user runs it) and
must exit cleanly and print its key result lines.  Marked ``examples`` so
they can be deselected for quick iterations (``-m "not examples"``).
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"

#: script name → a substring its stdout must contain
EXPECTED_OUTPUT = {
    "quickstart.py": "Per-prototype solution subgraphs",
    "reddit_moderation.py": "Flagged authors",
    "imdb_mining.py": "precise",
    "exploratory_search.py": "First matches at edit-distance",
    "ml_bulk_labeling.py": "Feature matrix",
    "noisy_data.py": "instances recovered",
    "pipeline_tour.py": "audit exact: True",
    "wildcard_search.py": "Categories that close",
    "motif_census.py": "Totals agree with the TLE baseline: True",
}


@pytest.mark.examples
@pytest.mark.parametrize("script", sorted(EXPECTED_OUTPUT))
def test_example_runs(script):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"missing example {script}"
    completed = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert EXPECTED_OUTPUT[script] in completed.stdout


def test_every_example_is_covered():
    scripts = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(EXPECTED_OUTPUT)
