"""Tests for the tracked benchmark-ratio history (compare_bench)."""

import json
import sys
from pathlib import Path

import pytest

BENCHMARKS = Path(__file__).resolve().parents[1] / "benchmarks"
if str(BENCHMARKS) not in sys.path:
    sys.path.insert(0, str(BENCHMARKS))

from compare_bench import (  # noqa: E402
    TRACKED,
    append_history,
    compare,
    history_entry,
    load_history,
)


def payload(**overrides):
    row = {
        "name": "W-1",
        "speedup_kernel_delta": 4.0,
        "speedup_array_vs_delta": 3.0,
        "visit_reduction_delta": 2.0,
        "wall_seconds": 1.23,  # untracked noise, must be trimmed
    }
    row.update(overrides)
    return {"workloads": [row]}


class TestHistoryEntry:
    def test_trims_to_tracked_ratios(self):
        entry = history_entry(payload(), commit="abc1234")
        assert entry["commit"] == "abc1234"
        assert entry["recorded_unix"] > 0
        row, = entry["workloads"]
        # untracked fields are trimmed; tracked ratios the row doesn't
        # carry (here the NLCC bench's) are omitted rather than None
        assert set(row) == {
            "name", "speedup_kernel_delta", "speedup_array_vs_delta",
            "visit_reduction_delta",
        }
        assert set(row) <= {"name", *TRACKED}
        assert row["speedup_kernel_delta"] == 4.0

    def test_default_commit_is_resolved(self):
        entry = history_entry(payload())
        assert entry["commit"]  # a short hash in-repo, "unknown" outside


class TestHistoryFile:
    def test_load_missing_file(self, tmp_path):
        assert load_history(tmp_path / "absent.jsonl") == []

    def test_append_then_load_round_trip(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        first = history_entry(payload(), commit="aaa")
        second = history_entry(
            payload(speedup_kernel_delta=5.0), commit="bbb"
        )
        append_history(path, first)
        append_history(path, second)
        entries = load_history(path)
        assert [e["commit"] for e in entries] == ["aaa", "bbb"]
        assert entries[-1]["workloads"][0]["speedup_kernel_delta"] == 5.0
        # each line is standalone JSON (append-only log survives truncation)
        lines = path.read_text().splitlines()
        assert all(json.loads(line) for line in lines)

    def test_committed_history_parses(self):
        committed = Path(__file__).resolve().parents[1] / "BENCH_HISTORY.jsonl"
        entries = load_history(committed)
        assert entries, "seed history entry is missing"
        for entry in entries:
            assert entry["commit"]
            for row in entry["workloads"]:
                tracked = set(row) - {"name"}
                assert tracked and tracked <= set(TRACKED)


class TestCompare:
    def test_within_tolerance_passes(self):
        base = history_entry(payload(), commit="x")
        fresh = payload(speedup_kernel_delta=3.2)  # 20% drop
        rows, failures = compare(
            {"workloads": base["workloads"]}, fresh, tolerance=0.25
        )
        assert not failures
        assert any("ok" in row for row in rows)

    def test_regression_fails(self):
        base = history_entry(payload(), commit="x")
        fresh = payload(speedup_array_vs_delta=2.0)  # 33% drop
        _rows, failures = compare(
            {"workloads": base["workloads"]}, fresh, tolerance=0.25
        )
        assert failures
        assert "W-1.speedup_array_vs_delta" in failures[0]

    def test_improvement_always_passes(self):
        base = history_entry(payload(), commit="x")
        fresh = payload(
            speedup_kernel_delta=40.0, speedup_array_vs_delta=30.0
        )
        _rows, failures = compare(
            {"workloads": base["workloads"]}, fresh, tolerance=0.25
        )
        assert not failures

    def test_new_and_missing_workloads_reported_not_failed(self):
        base = {"workloads": [{"name": "OLD", **{f: 1.0 for f in TRACKED}}]}
        rows, failures = compare(base, payload(), tolerance=0.25)
        assert not failures
        notes = {row[-1] for row in rows}
        assert "new workload (not committed)" in notes
        assert "missing from fresh run" in notes
