"""Tests for the delegate-partitioned per-rank graph store."""

import pytest

from repro.errors import PartitionError
from repro.graph import from_edges
from repro.graph.generators import webgraph
from repro.runtime import PartitionedGraph
from repro.runtime.store import DistributedGraphStore


def star(leaves=9):
    return from_edges([(0, i) for i in range(1, leaves + 1)])


class TestShardContents:
    def test_owned_vertices_hold_full_adjacency(self):
        g = from_edges([(0, 1), (1, 2), (2, 0)])
        pg = PartitionedGraph(g, 2, assignment={0: 0, 1: 1, 2: 0})
        store = DistributedGraphStore(pg)
        assert sorted(store.shard(0).adjacency(0)) == [1, 2]
        assert sorted(store.shard(1).adjacency(1)) == [0, 2]
        assert not store.shard(1).holds(0)

    def test_every_directed_edge_stored_exactly_once(self):
        g = webgraph(150, seed=4)
        pg = PartitionedGraph(g, 3)
        store = DistributedGraphStore(pg)
        stored = sorted(store.iter_all_edges())
        expected = sorted(
            (u, v) for u in g.vertices() for v in g.neighbors(u)
        )
        assert stored == expected

    def test_labels_preserved(self):
        g = from_edges([(0, 1)], labels={0: 5, 1: 9})
        pg = PartitionedGraph(g, 1)
        store = DistributedGraphStore(pg)
        assert store.shard(0).label(0) == 5
        assert store.shard(0).label(1) == 9

    def test_unknown_vertex_rejected(self):
        g = from_edges([(0, 1)])
        store = DistributedGraphStore(PartitionedGraph(g, 2, assignment={0: 0, 1: 0}))
        with pytest.raises(PartitionError):
            store.shard(1).adjacency(0)

    def test_unknown_rank_rejected(self):
        g = from_edges([(0, 1)])
        store = DistributedGraphStore(PartitionedGraph(g, 1))
        with pytest.raises(PartitionError):
            store.shard(5)


class TestDelegates:
    def test_delegate_copies_on_every_rank(self):
        g = star(9)
        pg = PartitionedGraph(
            g, 3, assignment={v: v % 3 for v in g.vertices()},
            delegate_degree_threshold=5,
        )
        store = DistributedGraphStore(pg)
        for rank in range(3):
            assert store.shard(rank).holds(0)

    def test_delegate_edges_striped_completely(self):
        g = star(9)
        pg = PartitionedGraph(
            g, 3, assignment={v: v % 3 for v in g.vertices()},
            delegate_degree_threshold=5,
        )
        store = DistributedGraphStore(pg)
        striped = []
        for rank in range(3):
            striped.extend(int(t) for t in store.shard(rank).adjacency(0))
        assert sorted(striped) == list(range(1, 10))

    def test_delegates_improve_storage_balance(self):
        g = star(30)
        assignment = {v: 0 if v == 0 else v % 4 for v in g.vertices()}
        plain = DistributedGraphStore(PartitionedGraph(g, 4, assignment=assignment))
        delegated = DistributedGraphStore(
            PartitionedGraph(g, 4, assignment=assignment,
                             delegate_degree_threshold=10)
        )
        assert delegated.storage_imbalance() < plain.storage_imbalance()


class TestMemoryAccounting:
    def test_total_memory_scales_with_edges(self):
        small = DistributedGraphStore(PartitionedGraph(from_edges([(0, 1)]), 1))
        big = DistributedGraphStore(PartitionedGraph(webgraph(200, seed=5), 1))
        assert big.total_memory_bytes() > small.total_memory_bytes()

    def test_memory_by_rank_sums_to_total(self):
        store = DistributedGraphStore(PartitionedGraph(webgraph(150, seed=6), 4))
        assert sum(store.memory_by_rank()) == store.total_memory_bytes()

    def test_shard_memory_formula(self):
        g = from_edges([(0, 1), (1, 2)])
        store = DistributedGraphStore(PartitionedGraph(g, 1))
        shard = store.shard(0)
        expected = 8 * (shard.num_vertices + 1) + 8 * shard.num_edge_slots + 2 * shard.num_vertices
        assert shard.memory_bytes() == expected
