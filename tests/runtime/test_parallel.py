"""Tests for real worker-process prototype search."""

import pytest

from repro.core import PipelineOptions, run_pipeline
from repro.core.template import PatternTemplate
from repro.errors import PipelineError
from repro.graph.generators import planted_graph

EDGES = [(0, 1), (1, 2), (2, 0), (2, 3)]
LABELS = [1, 2, 3, 4]


def workload(seed=51):
    graph = planted_graph(60, 140, EDGES, LABELS, copies=3, num_labels=5, seed=seed)
    template = PatternTemplate.from_edges(
        EDGES, {i: l for i, l in enumerate(LABELS)}, name="pool-t"
    )
    return graph, template


class TestWorkerProcesses:
    def test_results_identical_to_sequential(self):
        graph, template = workload()
        sequential = run_pipeline(
            graph, template, 1, PipelineOptions(num_ranks=2, count_matches=True)
        )
        pooled = run_pipeline(
            graph, template, 1,
            PipelineOptions(num_ranks=2, count_matches=True, worker_processes=3),
        )
        assert pooled.match_vectors == sequential.match_vectors
        for proto in sequential.prototype_set:
            seq_outcome = sequential.outcome_for(proto.id)
            par_outcome = pooled.outcome_for(proto.id)
            assert par_outcome.solution_vertices == seq_outcome.solution_vertices
            assert par_outcome.solution_edges == seq_outcome.solution_edges
            assert par_outcome.match_mappings == seq_outcome.match_mappings

    def test_containment_rule_across_pooled_levels(self):
        graph, template = workload(seed=52)
        pooled = run_pipeline(
            graph, template, 1, PipelineOptions(num_ranks=2, worker_processes=2)
        )
        for proto in pooled.prototype_set:
            children = proto.children()
            if not children:
                continue
            union_children = set()
            for child in children:
                union_children |= pooled.outcome_for(child.id).solution_vertices
            assert pooled.outcome_for(proto.id).solution_vertices <= union_children

    def test_simulated_times_populated(self):
        graph, template = workload(seed=53)
        pooled = run_pipeline(
            graph, template, 1, PipelineOptions(num_ranks=2, worker_processes=2)
        )
        assert pooled.total_simulated_seconds > 0
        assert all(
            lvl.search_seconds >= 0 for lvl in pooled.levels
        )

    def test_array_paths_forwarded_to_workers(self):
        # Workers read options.array_state/array_nlcc directly; a dropped
        # keyword would silently fall back to the dict path in-pool while
        # the sequential run used the array kernels.
        graph, template = workload(seed=54)
        knobs = dict(
            num_ranks=2, count_matches=True,
            array_state=True, array_nlcc=True,
        )
        sequential = run_pipeline(
            graph, template, 1, PipelineOptions(**knobs)
        )
        pooled = run_pipeline(
            graph, template, 1,
            PipelineOptions(worker_processes=2, **knobs),
        )
        assert pooled.match_vectors == sequential.match_vectors
        for proto in sequential.prototype_set:
            seq_outcome = sequential.outcome_for(proto.id)
            par_outcome = pooled.outcome_for(proto.id)
            assert (
                par_outcome.nlcc_tokens_launched
                == seq_outcome.nlcc_tokens_launched
            )
            assert (
                par_outcome.distinct_matches == seq_outcome.distinct_matches
            )

    def test_dict_payload_fallback_identical(self):
        # shm_pool=False forces the legacy dict payloads even when the
        # array stack is on; results must not depend on the wire format.
        graph, template = workload(seed=55)
        knobs = dict(
            num_ranks=2, count_matches=True,
            array_state=True, array_nlcc=True,
        )
        sequential = run_pipeline(graph, template, 1, PipelineOptions(**knobs))
        pooled = run_pipeline(
            graph, template, 1,
            PipelineOptions(worker_processes=2, shm_pool=False, **knobs),
        )
        assert pooled.match_vectors == sequential.match_vectors
        for proto in sequential.prototype_set:
            seq_outcome = sequential.outcome_for(proto.id)
            par_outcome = pooled.outcome_for(proto.id)
            assert par_outcome.solution_vertices == seq_outcome.solution_vertices
            assert par_outcome.solution_edges == seq_outcome.solution_edges
            assert par_outcome.match_mappings == seq_outcome.match_mappings

    def test_collect_matches_rejected(self):
        with pytest.raises(PipelineError):
            PipelineOptions(worker_processes=2, collect_matches=True)

    def test_extension_rejected(self):
        with pytest.raises(PipelineError):
            PipelineOptions(worker_processes=2, enumeration_optimization=True)

    def test_zero_workers_rejected(self):
        with pytest.raises(PipelineError):
            PipelineOptions(worker_processes=0)
