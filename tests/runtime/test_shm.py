"""Shared-memory CSR lifecycle and pooled-payload parity tests.

Covers the three guarantees of the zero-copy pool:

* segment lifecycle — owner creates/unlinks exactly once, attachers get
  read-only zero-copy views, nothing leaks after pool close or a worker
  exception (``/dev/shm`` is scanned directly);
* payload parity — a packed-bitmap ``array`` task reconstructs, worker
  side, exactly the scope the legacy dict payload ships;
* result parity — pooled runs (shm bitmaps on or off) are bit-identical
  to the sequential dict oracle on KERNEL-STRESS- and NLCC-STRESS-shaped
  workloads, and stable across repeated runs (the dropped per-vertex
  ``sorted()`` in ``state_to_payload`` must not matter).
"""

import glob
import os
import pickle

import numpy as np
import pytest

from repro.core import PipelineOptions, run_pipeline
from repro.core.arraystate import ArraySearchState, csr_of
from repro.core.candidate_set import max_candidate_set
from repro.core.state import SearchState
from repro.core.template import PatternTemplate
from repro.core.topdown import exploratory_search
from repro.graph.generators.random_labeled import gnm_graph
from repro.runtime import Engine, MessageStats, PartitionedGraph
from repro.runtime.parallel import (
    PoolTask,
    PrototypeSearchPool,
    _search_task,
    array_task,
)
from repro.runtime.shm import (
    SharedGraphCsr,
    attach_shared_csr,
    detach_all,
    owned_segment_names,
)


def shm_segments():
    """Names of our segments currently present in /dev/shm."""
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - tmpfs-less host
        return []
    return sorted(
        os.path.basename(p) for p in glob.glob("/dev/shm/repro-csr-*")
    )


def assert_no_segments():
    assert owned_segment_names() == []
    assert shm_segments() == []


def kernel_workload():
    """A scaled-down KERNEL-STRESS: low-label-diversity G(n, m) + path."""
    graph = gnm_graph(600, 2000, num_labels=4, seed=7)
    labels = {v: v % 4 for v in range(6)}
    edges = [(v, v + 1) for v in range(5)]
    template = PatternTemplate.from_edges(edges, labels, name="shm-path6")
    return graph, template


def nlcc_workload():
    """A scaled-down NLCC-STRESS: two-label G(n, m) with hubs + C4."""
    graph = gnm_graph(300, 900, num_labels=2, seed=13)
    rng = np.random.default_rng(17)
    for hub in rng.choice(300, size=2, replace=False).tolist():
        for v in rng.choice(300, size=30, replace=False).tolist():
            if v != hub and not graph.has_edge(hub, v):
                graph.add_edge(hub, v)
    template = PatternTemplate.from_edges(
        [(0, 1), (1, 2), (2, 3), (3, 0)],
        {0: 0, 1: 1, 2: 1, 3: 0},
        name="shm-c4",
    )
    return graph, template


def array_options(**overrides):
    base = dict(
        num_ranks=2, count_matches=True, array_state=True, array_nlcc=True
    )
    base.update(overrides)
    return PipelineOptions(**base)


def assert_results_equal(got, want, stats=False):
    """Results must match; execution stats (``stats=True``) only between
    pooled runs — sequential sweeps share one NLCC recycling cache across
    all prototypes, so their token counts legitimately differ from a
    pool's per-worker caches.  The launched/recycled *split* is compared
    as a sum: which worker serves which prototype is executor-scheduling
    dependent, and a warm cache turns a launch into a recycle — only the
    total token demand per prototype is deterministic."""
    assert got.match_vectors == want.match_vectors
    for proto in want.prototype_set:
        g = got.outcome_for(proto.id)
        w = want.outcome_for(proto.id)
        assert g.solution_vertices == w.solution_vertices
        assert g.solution_edges == w.solution_edges
        assert g.match_mappings == w.match_mappings
        assert g.distinct_matches == w.distinct_matches
        if stats:
            assert (
                g.nlcc_tokens_launched + g.nlcc_recycled
                == w.nlcc_tokens_launched + w.nlcc_recycled
            )
            assert g.lcc_iterations == w.lcc_iterations
            assert g.post_lcc_vertices == w.post_lcc_vertices
            assert g.post_lcc_edges == w.post_lcc_edges


class TestSegmentLifecycle:
    def test_attach_roundtrip_zero_copy(self):
        graph, _template = kernel_workload()
        csr = csr_of(graph)
        shared = SharedGraphCsr(csr)
        try:
            assert shared.name in owned_segment_names()
            assert shared.name in shm_segments()
            attached = attach_shared_csr(shared.handle, graph)
            for slot, _dtype, _length, _offset in shared.handle.layout:
                original = getattr(csr, slot)
                view = getattr(attached, slot)
                assert np.array_equal(view, original)
                assert view.dtype == original.dtype
                assert not view.flags.writeable
                with pytest.raises(ValueError):
                    view[0] = 0
            assert attached.index_of == csr.index_of
            assert attached.num_vertices == csr.num_vertices
            assert attached.num_directed_edges == csr.num_directed_edges
            assert attached.label_ids == csr.label_ids
            assert attached.edge_label_codes is None
        finally:
            del attached, view, original  # release views so detach unmaps
            detach_all()
            shared.close()
        assert_no_segments()

    def test_handle_survives_pickling(self):
        graph, _template = kernel_workload()
        with SharedGraphCsr(csr_of(graph)) as shared:
            handle = pickle.loads(pickle.dumps(shared.handle))
            assert handle.name == shared.handle.name
            assert handle.layout == shared.handle.layout
            assert handle.meta == shared.handle.meta
            attached = attach_shared_csr(handle, graph)
            assert attached.num_vertices == csr_of(graph).num_vertices
            del attached  # release views so detach unmaps
            detach_all()
        assert_no_segments()

    def test_close_unlinks_and_is_idempotent(self):
        graph, _template = kernel_workload()
        shared = SharedGraphCsr(csr_of(graph))
        name = shared.name
        shared.close()
        assert name not in shm_segments()
        from multiprocessing.shared_memory import SharedMemory

        with pytest.raises(FileNotFoundError):
            SharedMemory(name=name)
        shared.close()  # second close is a no-op
        assert_no_segments()

    def test_stale_payload_version_refuses_to_attach(self):
        # Protocol drift between owner and worker builds must fail loudly
        # at attach time, not corrupt reads later.
        graph, _template = kernel_workload()
        with SharedGraphCsr(csr_of(graph)) as shared:
            stale = pickle.loads(pickle.dumps(shared.handle))
            stale.meta["payload_version"] = 1
            with pytest.raises(ValueError, match="payload version 1"):
                attach_shared_csr(stale, graph)
            missing = pickle.loads(pickle.dumps(shared.handle))
            del missing.meta["payload_version"]
            with pytest.raises(ValueError, match="payload version None"):
                attach_shared_csr(missing, graph)
            # the refused attaches must not have registered a mapping
            assert not owned_segment_names() or shared.name in shm_segments()
            detach_all()
        assert_no_segments()

    def test_double_close_clears_owner_registry_once(self):
        graph, _template = kernel_workload()
        shared = SharedGraphCsr(csr_of(graph))
        name = shared.name
        assert name in owned_segment_names()
        shared.close()
        assert shared._shm is None
        assert name not in owned_segment_names()
        shared.close()  # no FileNotFoundError, no registry mutation
        assert shared._shm is None
        assert_no_segments()

    def test_owner_unlink_after_worker_crash(self):
        # Simulate a worker that attached and then died without detaching:
        # attach in-process (the mapping outlives the "worker"), close the
        # owner, and verify the segment is gone and a fresh attach fails.
        graph, _template = kernel_workload()
        shared = SharedGraphCsr(csr_of(graph))
        name = shared.name
        handle = pickle.loads(pickle.dumps(shared.handle))
        attached = attach_shared_csr(handle, graph)
        assert attached.num_vertices == csr_of(graph).num_vertices
        del attached  # the crashed worker's views are garbage now
        shared.close()  # owner tears down regardless of the stale attacher
        assert name not in shm_segments()
        assert name not in owned_segment_names()
        detach_all()  # drop the stale mapping cached under the dead name
        with pytest.raises(FileNotFoundError):
            attach_shared_csr(handle, graph)
        detach_all()
        assert_no_segments()

    def test_context_manager_cleans_up_on_exception(self):
        graph, _template = kernel_workload()
        name = None
        with pytest.raises(RuntimeError):
            with SharedGraphCsr(csr_of(graph)) as shared:
                name = shared.name
                raise RuntimeError("boom")
        assert name is not None
        assert name not in shm_segments()
        assert_no_segments()


class TestPoolLifecycle:
    def test_pooled_run_leaves_no_segments(self):
        graph, template = kernel_workload()
        run_pipeline(graph, template, 1, array_options(worker_processes=2))
        assert_no_segments()

    def test_worker_exception_does_not_leak(self):
        graph, template = kernel_workload()
        pool = PrototypeSearchPool(
            graph, template, 1, array_options(worker_processes=2), 2
        )
        assert pool.array_payloads
        name = pool._shm.name
        assert name in shm_segments()
        # An unknown prototype id blows up inside the worker; the pool
        # (and its segment) must still tear down cleanly afterwards.
        future = pool._pool.submit(
            _search_task, PoolTask(999, "array", (b"", b"", None), 0)
        )
        with pytest.raises(KeyError):
            future.result()
        pool.close()
        assert name not in shm_segments()
        assert_no_segments()

    def test_shm_pool_off_exports_nothing(self):
        graph, template = kernel_workload()
        with PrototypeSearchPool(
            graph, template, 1,
            array_options(worker_processes=2, shm_pool=False), 2,
        ) as pool:
            assert not pool.array_payloads
            assert pool._shm is None
            assert_no_segments()


class TestPayloadParity:
    def test_mask_payload_matches_dict_payload(self):
        graph, template = kernel_workload()
        csr = csr_of(graph)
        options = array_options()
        pgraph = PartitionedGraph(graph, options.num_ranks)
        engine = Engine(pgraph, MessageStats(options.num_ranks), options.batch_size)
        base_state = max_candidate_set(graph, template, engine)
        base_astate = ArraySearchState.from_search_state(
            base_state, roles=sorted(template.graph.vertices())
        )
        from repro.core.prototypes import generate_prototypes

        for proto in generate_prototypes(template, 1, None):
            ascope = base_astate.for_prototype_search(proto)
            task = array_task(proto.id, ascope)
            vertex_bits, edge_bits, warm_bits = task.data
            assert warm_bits is None
            rebuilt = ArraySearchState.from_scope_payload(
                graph, csr, proto, vertex_bits, edge_bits
            )
            assert np.array_equal(rebuilt.vertex_active, ascope.vertex_active)
            assert np.array_equal(rebuilt.edge_alive, ascope.edge_alive)
            assert np.array_equal(rebuilt.role_mask, ascope.role_mask)
            dict_scope = base_state.for_prototype_search(proto)
            state = SearchState.empty(graph)
            rebuilt.write_back(state)
            assert state.candidates == dict_scope.candidates
            assert state.active_edges == dict_scope.active_edges

    def test_array_payload_bytes_much_smaller_than_dict(self):
        graph, template = kernel_workload()
        options = array_options()
        pgraph = PartitionedGraph(graph, options.num_ranks)
        engine = Engine(pgraph, MessageStats(options.num_ranks), options.batch_size)
        base_state = max_candidate_set(graph, template, engine)
        base_astate = ArraySearchState.from_search_state(
            base_state, roles=sorted(template.graph.vertices())
        )
        from repro.core.prototypes import generate_prototypes
        from repro.runtime.parallel import dict_task

        proto = next(iter(generate_prototypes(template, 1, None)))
        packed = array_task(proto.id, base_astate.for_prototype_search(proto))
        legacy = dict_task(proto.id, base_state.for_prototype_search(proto))
        assert len(pickle.dumps(packed)) * 10 < len(pickle.dumps(legacy))


class TestPooledParity:
    @pytest.mark.parametrize("workload", [kernel_workload, nlcc_workload])
    def test_pipeline_matches_sequential(self, workload):
        graph, template = workload()
        sequential = run_pipeline(graph, template, 1, array_options())
        pooled_shm = run_pipeline(
            graph, template, 1, array_options(worker_processes=2)
        )
        pooled_dict = run_pipeline(
            graph, template, 1,
            array_options(worker_processes=2, shm_pool=False),
        )
        assert_results_equal(pooled_shm, sequential)
        assert_results_equal(pooled_dict, sequential)
        assert_results_equal(pooled_shm, pooled_dict, stats=True)
        assert_no_segments()

    def test_exploratory_matches_sequential(self):
        graph, template = nlcc_workload()
        force_all = dict(stop_condition=lambda level: False)
        sequential = exploratory_search(
            graph, template, 1, options=array_options(), **force_all
        )
        pooled = exploratory_search(
            graph, template, 1,
            options=array_options(worker_processes=2), **force_all
        )
        assert_results_equal(pooled, sequential)
        assert_no_segments()

    def test_pooled_results_order_stable(self):
        # state_to_payload ships role sets unsorted; determinism must come
        # from task-order result collection, in both payload formats.
        graph, template = nlcc_workload()
        first = run_pipeline(
            graph, template, 1,
            array_options(worker_processes=2, shm_pool=False),
        )
        second = run_pipeline(
            graph, template, 1,
            array_options(worker_processes=2, shm_pool=False),
        )
        shm = run_pipeline(
            graph, template, 1, array_options(worker_processes=2)
        )
        assert_results_equal(second, first, stats=True)
        assert_results_equal(shm, first, stats=True)
