"""Tests for message accounting, the cost model and the visitor engine."""

import pytest

from repro.errors import EngineError
from repro.graph import from_edges
from repro.runtime import (
    CostModel,
    Engine,
    MessageStats,
    PartitionedGraph,
    Visitor,
)


def two_rank_pgraph():
    g = from_edges([(0, 1), (1, 2), (2, 3)])
    return PartitionedGraph(g, 2, assignment={0: 0, 1: 1, 2: 0, 3: 1})


class TestMessageStats:
    def test_phase_attribution(self):
        stats = MessageStats(2)
        with stats.phase("lcc"):
            stats.record_message(0, 1, False)
        stats.record_message(0, 0, False)
        assert stats.phases["lcc"].messages == 1
        assert stats.phases["default"].messages == 1
        assert stats.phase_fraction("lcc") == pytest.approx(0.5)

    def test_nested_phases(self):
        stats = MessageStats(1)
        with stats.phase("outer"):
            with stats.phase("inner"):
                stats.record_message(0, 0, False)
        assert stats.phases["inner"].messages == 1
        assert "outer" not in stats.phases or stats.phases["outer"].messages == 0

    def test_remote_fraction(self):
        stats = MessageStats(2)
        stats.record_message(0, 1, False)
        stats.record_message(0, 0, False)
        assert stats.remote_fraction() == pytest.approx(0.5)

    def test_remote_fraction_empty(self):
        assert MessageStats(2).remote_fraction() == 0.0

    def test_barrier_records_interval_maxima(self):
        stats = MessageStats(2)
        stats.record_visit(0)
        stats.record_visit(0)
        stats.record_visit(1)
        stats.record_message(0, 1, True)
        stats.barrier()
        assert stats.intervals == [(2, 1, 1, 1)]

    def test_intervals_reset_after_barrier(self):
        stats = MessageStats(2)
        stats.record_visit(0)
        stats.barrier()
        stats.barrier()
        assert stats.intervals[1] == (0, 0, 0, 0)

    def test_summary_keys(self):
        stats = MessageStats(1)
        stats.record_message(0, 0, False)
        stats.barrier()
        summary = stats.summary()
        assert summary["total_messages"] == 1
        assert summary["barriers"] == 1
        assert "default" in summary["phases"]


class TestCostModel:
    def test_makespan_counts_critical_path(self):
        stats = MessageStats(2)
        # rank 0 does 10 visits, rank 1 does 2 -> critical path is 10
        for _ in range(10):
            stats.record_visit(0)
        for _ in range(2):
            stats.record_visit(1)
        stats.barrier()
        model = CostModel(visit_cost=1.0, barrier_cost=0.0)
        assert model.makespan(stats) == pytest.approx(10.0)

    def test_remote_messages_cost_more(self):
        local = MessageStats(2)
        local.record_message(0, 0, False)
        local.barrier()
        remote = MessageStats(2)
        remote.record_message(0, 1, True)
        remote.barrier()
        model = CostModel(barrier_cost=0.0)
        assert model.makespan(remote) > model.makespan(local)

    def test_shared_memory_cheaper_than_network(self):
        shm = MessageStats(2)
        shm.record_message(0, 1, False)  # cross-rank, same node
        shm.barrier()
        net = MessageStats(2)
        net.record_message(0, 1, True)  # cross-rank, cross-node
        net.barrier()
        model = CostModel(barrier_cost=0.0)
        assert model.makespan(shm) < model.makespan(net)

    def test_oversubscription_scales_compute(self):
        stats = MessageStats(1)
        stats.record_visit(0)
        stats.barrier()
        base = CostModel(barrier_cost=0.0)
        over = CostModel(barrier_cost=0.0, oversubscription=2.0)
        assert over.makespan(stats) == pytest.approx(2 * base.makespan(stats))

    def test_makespan_between(self):
        stats = MessageStats(1)
        stats.record_visit(0)
        stats.barrier()
        stats.record_visit(0)
        stats.record_visit(0)
        stats.barrier()
        model = CostModel(visit_cost=1.0, barrier_cost=0.0)
        assert model.makespan_between(stats, 1) == pytest.approx(2.0)
        assert model.makespan_between(stats, 0, 1) == pytest.approx(1.0)


class TestEngine:
    def test_seed_visitors_delivered(self):
        pg = two_rank_pgraph()
        engine = Engine(pg)
        visited = []
        engine.do_traversal(
            (Visitor(v) for v in pg.graph.vertices()),
            lambda ctx, vis: visited.append(vis.target),
        )
        assert sorted(visited) == [0, 1, 2, 3]

    def test_push_counts_messages(self):
        pg = two_rank_pgraph()
        engine = Engine(pg)

        def visit(ctx, vis):
            if vis.payload is None:
                for nbr in ctx.graph.neighbors(vis.target):
                    ctx.push(Visitor(nbr, "x", source=vis.target))

        engine.do_traversal((Visitor(v) for v in pg.graph.vertices()), visit)
        assert engine.stats.total_messages == 2 * pg.graph.num_edges
        # alternating partition makes all pushes remote
        assert engine.stats.total_remote_messages == 6

    def test_quiescence(self):
        pg = two_rank_pgraph()
        engine = Engine(pg)
        engine.do_traversal([Visitor(0)], lambda ctx, vis: None)
        assert engine.pending() == 0
        assert engine.stats.total_barriers == 1

    def test_multi_hop_propagation(self):
        pg = two_rank_pgraph()
        engine = Engine(pg)
        reached = set()

        def visit(ctx, vis):
            depth = vis.payload or 0
            if vis.target in reached:
                return
            reached.add(vis.target)
            if depth < 3:
                for nbr in ctx.graph.neighbors(vis.target):
                    ctx.push(Visitor(nbr, depth + 1, source=vis.target))

        engine.do_traversal([Visitor(0, 0)], visit)
        assert reached == {0, 1, 2, 3}

    def test_deterministic_order(self):
        def run():
            pg = two_rank_pgraph()
            engine = Engine(pg, batch_size=2)
            order = []

            def visit(ctx, vis):
                order.append(vis.target)
                if vis.payload is None:
                    for nbr in ctx.graph.neighbors(vis.target):
                        ctx.push(Visitor(nbr, 1, source=vis.target))

            engine.do_traversal((Visitor(v) for v in pg.graph.vertices()), visit)
            return order

        assert run() == run()

    def test_not_reentrant(self):
        pg = two_rank_pgraph()
        engine = Engine(pg)

        def visit(ctx, vis):
            engine.do_traversal([Visitor(0)], lambda c, v: None)

        with pytest.raises(EngineError):
            engine.do_traversal([Visitor(0)], visit)

    def test_bad_batch_size(self):
        with pytest.raises(EngineError):
            Engine(two_rank_pgraph(), batch_size=0)

    def test_stats_rank_mismatch_rejected(self):
        with pytest.raises(EngineError):
            Engine(two_rank_pgraph(), stats=MessageStats(5))

    def test_delegate_pushes_handled_locally(self):
        g = from_edges([(0, i) for i in range(1, 9)])
        pg = PartitionedGraph(
            g, 2, assignment={v: v % 2 for v in g.vertices()},
            delegate_degree_threshold=5,
        )
        engine = Engine(pg)

        def visit(ctx, vis):
            if vis.payload is None and vis.target != 0:
                ctx.push(Visitor(0, "to-hub", source=vis.target))

        engine.do_traversal((Visitor(v) for v in g.vertices()), visit)
        assert engine.stats.total_remote_messages == 0
        assert engine.stats.total_messages == 8
