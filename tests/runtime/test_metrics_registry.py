"""Tests for the always-on metrics registry and its adaptive consumers."""

import json
import pickle
import time

import numpy as np
import pytest

from repro.core import PipelineOptions, run_pipeline
from repro.core.template import PatternTemplate
from repro.graph.generators import planted_graph
from repro.runtime.metrics import (
    COST_EWMA_ALPHA,
    NULL_METRICS,
    ConstraintCostModel,
    MetricsRegistry,
    NullMetricsRegistry,
)

EDGES = [(0, 1), (1, 2), (2, 0), (2, 3)]
LABELS = [1, 2, 3, 4]

#: worker-local by construction: the parent process compiles kernels and
#: prototype caches the workers never see (and vice versa), and pool
#: busy/idle seconds only exist in pooled runs
_PARITY_EXCLUDED_PREFIXES = ("pool.", "cache.kernel", "cache.prototype")


def workload(seed=51):
    graph = planted_graph(60, 140, EDGES, LABELS, copies=3, num_labels=5, seed=seed)
    template = PatternTemplate.from_edges(
        EDGES, {i: l for i, l in enumerate(LABELS)}, name="metrics-t"
    )
    return graph, template


class TestInstruments:
    def test_counter_inc(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_gauge_set_overwrites(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        gauge.set(7.0)
        gauge.set(3.0)
        assert gauge.value == 3.0

    def test_histogram_log2_bucket_placement(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h")
        # bucket index is bit_length(int(v)): 0 and sub-1.0 land in 0,
        # then 1 -> 1, 2..3 -> 2, 4..7 -> 3, ...
        for value in (0, 0.5, 1, 2, 3, 4):
            histogram.observe(value)
        buckets = histogram.buckets
        assert buckets[0] == 2
        assert buckets[1] == 1
        assert buckets[2] == 2
        assert buckets[3] == 1
        assert histogram.count == 6
        assert histogram.sum == pytest.approx(10.5)

    def test_histogram_overflow_clamps_to_last_bucket(self):
        histogram = MetricsRegistry().histogram("h")
        histogram.observe(2.0 ** 60)
        assert histogram.buckets[-1] == 1

    def test_handles_are_cached_by_name(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.gauge("x") is registry.gauge("x")
        assert registry.histogram("x") is registry.histogram("x")


class TestRegistry:
    def test_untouched_registry_exports_empty(self):
        assert MetricsRegistry().export() == {}

    def test_export_merge_round_trip_is_additive(self):
        source = MetricsRegistry()
        source.counter("c").inc(3)
        source.gauge("g").set(5.0)
        source.histogram("h").observe(4)
        payload = source.export()

        target = MetricsRegistry()
        target.counter("c").inc(1)
        target.merge(payload)
        target.merge(payload)
        assert target.counter("c").value == 7.0
        assert target.gauge("g").value == 10.0  # worker gauges sum
        assert target.histogram("h").count == 2
        assert target.histogram("h").buckets[3] == 2

    def test_snapshot_is_json_serializable(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.gauge("g").set(2.0)
        registry.histogram("h").observe(1)
        snapshot = json.loads(json.dumps(registry.snapshot()))
        assert snapshot["counters"] == {"c": 1.0}
        assert snapshot["gauges"] == {"g": 2.0}
        assert snapshot["histograms"]["h"]["count"] == 1

    def test_registry_pickles_empty(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(9)
        clone = pickle.loads(pickle.dumps(registry))
        assert clone.export() == {}
        clone.counter("c").inc()  # still usable
        assert clone.counter("c").value == 1.0

    def test_null_registry_is_inert(self):
        assert NULL_METRICS.enabled is False
        assert isinstance(NULL_METRICS, NullMetricsRegistry)
        NULL_METRICS.counter("c").inc()
        NULL_METRICS.gauge("g").set(1.0)
        NULL_METRICS.histogram("h").observe(1.0)
        assert NULL_METRICS.export() == {}
        assert NULL_METRICS.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }


class TestConstraintCostModel:
    def test_first_sample_taken_verbatim(self):
        model = ConstraintCostModel()
        model.observe("k", 1.0)
        assert model.seconds("k") == 1.0

    def test_ewma_update(self):
        model = ConstraintCostModel()
        model.observe("k", 1.0)
        model.observe("k", 2.0)
        expected = (1.0 - COST_EWMA_ALPHA) * 1.0 + COST_EWMA_ALPHA * 2.0
        assert model.seconds("k") == pytest.approx(expected)

    def test_bucket_zero_for_unseen_and_sub_resolution(self):
        model = ConstraintCostModel()
        assert model.bucket("missing") == 0
        model.observe("fast", 0.01)  # below COST_RESOLUTION_SECONDS
        assert model.bucket("fast") == 0

    def test_buckets_separate_clearly_different_costs(self):
        model = ConstraintCostModel()
        model.observe("cheap", 0.2)
        model.observe("pricey", 8.0)
        assert 0 < model.bucket("cheap") < model.bucket("pricey")

    def test_pickles_empty(self):
        model = ConstraintCostModel()
        model.observe("k", 1.0)
        clone = pickle.loads(pickle.dumps(model))
        assert len(clone) == 0
        assert len(model) == 1


class TestCrossProcessParity:
    def test_pooled_counters_match_sequential_bit_exactly(self):
        graph, template = workload()
        options = dict(
            num_ranks=2, count_matches=True, work_recycling=False,
            enumeration_optimization=False, adaptive=False,
        )
        seq_options = PipelineOptions(**options)
        sequential = run_pipeline(graph, template, 1, seq_options)
        pooled_options = PipelineOptions(worker_processes=3, **options)
        pooled = run_pipeline(graph, template, 1, pooled_options)
        assert pooled.match_vectors == sequential.match_vectors

        def comparable(registry):
            return {
                name: value
                for name, value in registry.counters()
                if not name.startswith(_PARITY_EXCLUDED_PREFIXES)
            }

        seq_counters = comparable(seq_options.metrics)
        pooled_counters = comparable(pooled_options.metrics)
        assert pooled_counters == seq_counters
        # the default array paths drive batched rounds, not traversals
        assert seq_counters["engine.rounds_batched"] > 0
        assert seq_counters["fixpoint.rounds_dense"] > 0

    def test_pooled_run_reports_pool_accounting(self):
        graph, template = workload(seed=52)
        options = PipelineOptions(num_ranks=2, worker_processes=2)
        run_pipeline(graph, template, 1, options)
        counters = dict(options.metrics.counters())
        assert counters["pool.busy_seconds"] > 0
        assert counters["pool.idle_seconds"] >= 0
        assert dict(options.metrics.gauges())["shm.segment_bytes"] > 0

    def test_pooled_adaptive_matches_sequential(self):
        graph, template = workload(seed=53)
        sequential = run_pipeline(
            graph, template, 1,
            PipelineOptions(num_ranks=2, count_matches=True, adaptive=True),
        )
        pooled = run_pipeline(
            graph, template, 1,
            PipelineOptions(
                num_ranks=2, count_matches=True, adaptive=True,
                worker_processes=2,
            ),
        )
        assert pooled.match_vectors == sequential.match_vectors


@pytest.mark.microbench
class TestOverheadBudget:
    def test_enabled_registry_within_two_percent_of_disabled(self):
        """The design contract: always-on metrics add <2% to the fixpoint.

        Best-of-N wall times on the KERNEL-STRESS shape; the small
        absolute epsilon absorbs scheduler jitter on runs this short.
        """
        from repro.core.arraystate import ArraySearchState, array_kernel_fixpoint
        from repro.core.kernels import cached_role_kernel
        from repro.graph.generators.random_labeled import gnm_graph
        from repro.runtime.engine import Engine
        from repro.runtime.messages import MessageStats
        from repro.runtime.partition import PartitionedGraph

        graph = gnm_graph(8000, 26000, num_labels=4, seed=7)
        labels = {v: v % 4 for v in range(8)}
        template = PatternTemplate.from_edges(
            [(v, v + 1) for v in range(7)], labels, name="overhead-path8"
        )
        kernel = cached_role_kernel(template.graph)

        def best_of(metrics, repeats=3):
            best = float("inf")
            for _ in range(repeats):
                astate = ArraySearchState.initial(graph, template)
                engine = Engine(
                    PartitionedGraph(graph, 2), MessageStats(2), metrics=metrics
                )
                started = time.perf_counter()
                array_kernel_fixpoint(astate, kernel, engine)
                best = min(best, time.perf_counter() - started)
            return best

        best_of(NULL_METRICS, repeats=1)  # warm numpy/kernel caches
        disabled = best_of(NULL_METRICS)
        enabled = best_of(MetricsRegistry())
        assert enabled <= disabled * 1.02 + 0.010


class TestAlwaysOnDefaults:
    def test_pipeline_populates_metrics_by_default(self):
        graph, template = workload(seed=54)
        options = PipelineOptions(num_ranks=2)
        result = run_pipeline(graph, template, 1, options)
        counters = dict(options.metrics.counters())
        assert counters["engine.rounds_batched"] > 0
        assert counters["fixpoint.rounds_dense"] >= 1
        assert result.metrics is options.metrics
        assert "metrics" in result.stats_document()

    def test_numpy_values_stay_plain_floats(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(np.float64(2.0))
        snapshot = registry.snapshot()
        assert type(snapshot["counters"]["c"]) is float
