"""Remaining runtime coverage: counters, visitor, merge helpers."""

from repro.core.pipeline import merge_message_stats
from repro.runtime import MessageStats, Visitor
from repro.runtime.messages import PhaseCounters


class TestPhaseCounters:
    def test_merged_with(self):
        a = PhaseCounters()
        a.messages, a.remote_messages, a.visits, a.barriers = 5, 2, 7, 1
        b = PhaseCounters()
        b.messages, b.network_messages = 3, 1
        merged = a.merged_with(b)
        assert merged.messages == 8
        assert merged.remote_messages == 2
        assert merged.network_messages == 1
        assert merged.visits == 7
        assert merged.barriers == 1
        # inputs untouched
        assert a.messages == 5 and b.messages == 3


class TestVisitor:
    def test_defaults_and_repr(self):
        visitor = Visitor(3)
        assert visitor.payload is None
        assert visitor.source is None
        assert "target=3" in repr(visitor)

    def test_fields(self):
        visitor = Visitor(1, payload=("x",), source=9)
        assert visitor.source == 9
        assert visitor.payload == ("x",)


class TestMergeMessageStats:
    def test_merges_phases_and_controls(self):
        a = MessageStats(2)
        with a.phase("lcc"):
            a.record_message(0, 1, True)
            a.record_visit(0)
        a.record_quiescence(4, 2)
        a.barrier()

        b = MessageStats(2)
        with b.phase("lcc"):
            b.record_message(1, 1, False)
        with b.phase("nlcc"):
            b.record_message(0, 1, True)
        b.barrier()

        merged = merge_message_stats([a, b])
        assert merged["total_messages"] == 3
        assert merged["remote_messages"] == 2
        assert merged["control_messages"] == 4
        assert merged["phases"]["lcc"]["messages"] == 2
        assert merged["phases"]["nlcc"]["messages"] == 1
        assert merged["barriers"] == 2
        assert 0 <= merged["remote_fraction"] <= 1

    def test_empty_merge(self):
        merged = merge_message_stats([])
        assert merged["total_messages"] == 0
        assert merged["remote_fraction"] == 0.0

    def test_peak_interval_tracked(self):
        a = MessageStats(1)
        for _ in range(5):
            a.record_message(0, 0, False)
        a.barrier()
        merged = merge_message_stats([a])
        assert merged["peak_interval_messages"] == 5
