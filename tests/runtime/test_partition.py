"""Tests for hash/delegate partitioning and the locality model."""

import pytest

from repro.errors import PartitionError
from repro.graph import from_edges
from repro.graph.generators import webgraph
from repro.runtime import (
    PartitionedGraph,
    balanced_assignment,
    block_assignment,
    hash_assignment,
)


def star_graph(leaves=8):
    return from_edges([(0, i) for i in range(1, leaves + 1)])


class TestAssignments:
    def test_hash_assignment_covers_all(self):
        g = star_graph()
        assignment = hash_assignment(g.vertices(), 3)
        assert set(assignment) == set(g.vertices())
        assert all(0 <= r < 3 for r in assignment.values())

    def test_hash_assignment_spreads(self):
        assignment = hash_assignment(range(1000), 4)
        counts = [list(assignment.values()).count(r) for r in range(4)]
        assert min(counts) > 150  # roughly even

    def test_hash_zero_ranks_rejected(self):
        with pytest.raises(PartitionError):
            hash_assignment([0], 0)

    def test_block_assignment(self):
        assignment = block_assignment(list(range(10)), 2)
        assert assignment[0] == 0
        assert assignment[9] == 1

    def test_balanced_assignment_balances_degree(self):
        g = webgraph(400, seed=1)
        assignment = balanced_assignment(g, 4)
        pg = PartitionedGraph(g, 4, assignment=assignment)
        assert pg.load_imbalance() < 1.2

    def test_balanced_beats_block_on_skewed_graph(self):
        g = webgraph(400, seed=2)
        block = PartitionedGraph(g, 4, assignment=block_assignment(sorted(g.vertices()), 4))
        balanced = PartitionedGraph(g, 4, assignment=balanced_assignment(g, 4))
        assert balanced.load_imbalance() < block.load_imbalance()


class TestPartitionedGraph:
    def test_default_hash_partitioning(self):
        pg = PartitionedGraph(star_graph(), 2)
        assert pg.num_ranks == 2
        assert all(0 <= pg.rank_of(v) < 2 for v in pg.graph.vertices())

    def test_zero_ranks_rejected(self):
        with pytest.raises(PartitionError):
            PartitionedGraph(star_graph(), 0)

    def test_incomplete_assignment_rejected(self):
        g = star_graph()
        with pytest.raises(PartitionError):
            PartitionedGraph(g, 2, assignment={0: 0})

    def test_out_of_range_assignment_rejected(self):
        g = from_edges([(0, 1)])
        with pytest.raises(PartitionError):
            PartitionedGraph(g, 2, assignment={0: 0, 1: 5})

    def test_rank_of_unknown_vertex(self):
        pg = PartitionedGraph(star_graph(), 2)
        with pytest.raises(PartitionError):
            pg.rank_of(10**9)

    def test_remote_classification(self):
        g = from_edges([(0, 1)])
        pg = PartitionedGraph(g, 2, assignment={0: 0, 1: 1})
        assert pg.is_remote(0, 1)
        assert not pg.is_remote(0, 0)

    def test_vertex_counts(self):
        g = from_edges([(0, 1), (1, 2)])
        pg = PartitionedGraph(g, 2, assignment={0: 0, 1: 0, 2: 1})
        assert pg.rank_vertex_counts() == [2, 1]

    def test_with_assignment(self):
        g = from_edges([(0, 1)])
        pg = PartitionedGraph(g, 2, assignment={0: 0, 1: 0})
        moved = pg.with_assignment({0: 0, 1: 1})
        assert moved.is_remote(0, 1)
        assert not pg.is_remote(0, 1)


class TestDelegates:
    def test_hub_becomes_delegate(self):
        g = star_graph(10)
        pg = PartitionedGraph(g, 4, delegate_degree_threshold=5)
        assert 0 in pg.delegates
        assert 1 not in pg.delegates

    def test_messages_to_delegates_are_local(self):
        g = star_graph(10)
        assignment = {v: v % 4 for v in g.vertices()}
        pg = PartitionedGraph(g, 4, assignment=assignment, delegate_degree_threshold=5)
        # Hub 0 is on rank 0 but any vertex reaches it locally.
        assert not pg.is_remote(1, 0)
        assert not pg.is_remote(2, 0)

    def test_delegate_edges_spread_in_load_model(self):
        g = star_graph(12)
        assignment = {v: 0 for v in g.vertices()}
        with_delegates = PartitionedGraph(
            g, 4, assignment=assignment, delegate_degree_threshold=5
        )
        without = PartitionedGraph(g, 4, assignment=assignment)
        assert with_delegates.load_imbalance() < without.load_imbalance()


class TestLocality:
    def test_node_mapping(self):
        pg = PartitionedGraph(star_graph(), 8, ranks_per_node=4)
        assert pg.num_nodes() == 2
        assert pg.node_of_rank(3) == 0
        assert pg.node_of_rank(4) == 1

    def test_crosses_network(self):
        pg = PartitionedGraph(star_graph(), 8, ranks_per_node=4)
        assert not pg.crosses_network(0, 3)
        assert pg.crosses_network(0, 4)

    def test_one_rank_per_node_all_remote_cross_network(self):
        pg = PartitionedGraph(star_graph(), 4, ranks_per_node=1)
        assert pg.crosses_network(0, 1)

    def test_bad_ranks_per_node(self):
        with pytest.raises(PartitionError):
            PartitionedGraph(star_graph(), 4, ranks_per_node=0)
