"""Tests for the engine's batched hot paths (broadcast, bulk accounting)."""

from repro.graph import from_edges
from repro.runtime import Engine, MessageStats, PartitionedGraph, Visitor


def pgraph(ranks_per_node=1):
    g = from_edges([(0, 1), (1, 2), (2, 3), (3, 0)])
    return PartitionedGraph(
        g, 2, assignment={0: 0, 1: 1, 2: 0, 3: 1}, ranks_per_node=ranks_per_node
    )


class TestBroadcast:
    def test_broadcast_equivalent_to_push(self):
        """broadcast() must produce identical accounting to per-push."""
        def run(use_broadcast):
            pg = pgraph()
            engine = Engine(pg)
            received = []

            def visit(ctx, vis):
                if vis.payload is None:
                    nbrs = pg.graph.neighbors(vis.target)
                    if use_broadcast:
                        ctx.broadcast(vis.target, nbrs, "hello")
                    else:
                        for nbr in nbrs:
                            ctx.push(Visitor(nbr, "hello", source=vis.target))
                else:
                    received.append((vis.target, vis.source, vis.payload))

            engine.do_traversal(
                (Visitor(v) for v in pg.graph.vertices()), visit
            )
            return sorted(received), engine.stats.summary()

        push_events, push_stats = run(False)
        bcast_events, bcast_stats = run(True)
        assert push_events == bcast_events
        assert push_stats == bcast_stats

    def test_broadcast_delegates_stay_local(self):
        g = from_edges([(0, i) for i in range(1, 9)])
        pg = PartitionedGraph(
            g, 2, assignment={v: v % 2 for v in g.vertices()},
            delegate_degree_threshold=5,
        )
        engine = Engine(pg)

        def visit(ctx, vis):
            if vis.payload is None and vis.target != 0:
                ctx.broadcast(vis.target, [0], "to-hub")

        engine.do_traversal((Visitor(v) for v in g.vertices()), visit)
        assert engine.stats.total_remote_messages == 0


class TestBulkRecord:
    def test_matches_per_event_recording(self):
        per_event = MessageStats(3)
        with per_event.phase("p"):
            per_event.record_message(0, 1, False)
            per_event.record_message(0, 1, False)
            per_event.record_message(1, 2, True)
            per_event.record_message(2, 2, False)
            per_event.record_visit(0)
            per_event.record_visit(2)
        per_event.barrier()

        bulk = MessageStats(3)
        matrix = [[0, 2, 0], [0, 0, 1], [0, 0, 1]]
        visits = [1, 0, 1]
        rank_node = [0, 0, 1]  # ranks 0,1 share a node; rank 2 remote
        with bulk.phase("p"):
            bulk.bulk_record(matrix, visits, rank_node)
        bulk.barrier()

        assert bulk.summary() == per_event.summary()
        assert bulk.intervals == per_event.intervals
        assert bulk.rank_sent == per_event.rank_sent
        assert bulk.rank_visits == per_event.rank_visits

    def test_empty_matrix_noop(self):
        stats = MessageStats(2)
        stats.bulk_record([[0, 0], [0, 0]], [0, 0], [0, 1])
        assert stats.total_messages == 0
        assert stats.total_visits == 0
