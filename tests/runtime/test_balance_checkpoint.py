"""Tests for load balancing and checkpoint/restore."""

import pytest

from repro.errors import CheckpointError, PartitionError
from repro.graph import from_edges
from repro.graph.generators import webgraph
from repro.runtime import (
    PartitionedGraph,
    load_checkpoint,
    rebalance_cost,
    reload_on,
    reshuffle,
    save_checkpoint,
)


class TestReshuffle:
    def test_improves_imbalance(self):
        g = webgraph(300, seed=1)
        skewed = PartitionedGraph(g, 4, assignment={v: 0 if v < 250 else 1 for v in g.vertices()})
        assert reshuffle(skewed).load_imbalance() < skewed.load_imbalance()

    def test_preserves_rank_count_and_graph(self):
        g = webgraph(100, seed=2)
        pg = PartitionedGraph(g, 3)
        shuffled = reshuffle(pg)
        assert shuffled.num_ranks == 3
        assert shuffled.graph is g


class TestReload:
    def test_reload_on_fewer_ranks(self):
        g = webgraph(100, seed=3)
        pg = PartitionedGraph(g, 8)
        small = reload_on(pg, 2)
        assert small.num_ranks == 2
        assert small.load_imbalance() < 1.3

    def test_reload_keeps_delegate_threshold(self):
        g = webgraph(100, seed=4)
        pg = PartitionedGraph(g, 8, delegate_degree_threshold=10)
        small = reload_on(pg, 2)
        assert small.delegate_degree_threshold == 10

    def test_reload_ranks_per_node_zero_falls_back(self):
        # ranks_per_node is Optional[int]: an explicit 0 means "unset"
        # and must inherit the source deployment's layout instead of
        # reaching PartitionedGraph (which rejects non-positive values).
        g = webgraph(100, seed=6)
        pg = PartitionedGraph(g, 8, ranks_per_node=4)
        assert reload_on(pg, 4, ranks_per_node=0).ranks_per_node == 4
        assert reload_on(pg, 4, ranks_per_node=None).ranks_per_node == 4

    def test_reload_explicit_ranks_per_node_honored(self):
        g = webgraph(100, seed=7)
        pg = PartitionedGraph(g, 8, ranks_per_node=4)
        assert reload_on(pg, 4, ranks_per_node=2).ranks_per_node == 2

    def test_reload_zero_ranks_rejected(self):
        pg = PartitionedGraph(from_edges([(0, 1)]), 2)
        with pytest.raises(PartitionError):
            reload_on(pg, 0)

    def test_rebalance_cost_scales_with_edges(self):
        small = PartitionedGraph(from_edges([(0, 1)]), 1)
        big = PartitionedGraph(webgraph(200, seed=5), 1)
        assert rebalance_cost(big) > rebalance_cost(small)


class TestCheckpoint:
    def test_round_trip(self, tmp_path):
        g = from_edges([(0, 1), (1, 2)], labels={0: 1, 1: 2, 2: 3})
        state = {0: [1, 2], 1: [2]}
        path = tmp_path / "ckpt.json"
        save_checkpoint(path, g, state, metadata={"level": 2})
        loaded_graph, loaded_state, metadata = load_checkpoint(path)
        assert loaded_graph == g
        assert loaded_state == state
        assert metadata == {"level": 2}

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "other"}')
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_checkpoint(tmp_path / "missing.json")

    def test_unserializable_state_rejected(self, tmp_path):
        g = from_edges([(0, 1)])
        with pytest.raises(CheckpointError):
            save_checkpoint(tmp_path / "x.json", g, {0: object()})

    def test_restore_resumes_search(self, tmp_path):
        """Failure injection: interrupt after pruning, restore, finish."""
        from repro.core import (
            PatternTemplate,
            SearchState,
            generate_constraints,
            generate_prototypes,
            search_prototype,
        )
        from repro.runtime import Engine, MessageStats

        from repro.graph.generators import planted_graph

        edges = [(0, 1), (1, 2), (2, 0)]
        labels = [0, 1, 2]
        g = planted_graph(40, 80, edges, labels, copies=2, seed=9)
        template = PatternTemplate.from_edges(
            edges, {i: l for i, l in enumerate(labels)}, name="tri"
        )
        protos = generate_prototypes(template, 0)
        proto = protos.at(0)[0]

        # Phase 1: prune with LCC only, then checkpoint.
        from repro.core.lcc import local_constraint_checking

        state = SearchState.initial(g, template)
        pg = PartitionedGraph(g, 2)
        engine = Engine(pg, MessageStats(2))
        local_constraint_checking(state, proto.graph, engine)
        ckpt = tmp_path / "resume.json"
        save_checkpoint(
            ckpt,
            state.to_graph(),
            {v: sorted(state.roles(v)) for v in state.active_vertices()},
        )

        # Phase 2: "crash", restore into a fresh state, finish the search.
        pruned_graph, roles, _meta = load_checkpoint(ckpt)
        resumed = SearchState(
            g,
            {v: set(r) for v, r in roles.items()},
            {v: set(pruned_graph.neighbors(v)) for v in pruned_graph.vertices()},
        )
        engine2 = Engine(PartitionedGraph(g, 2), MessageStats(2))
        outcome = search_prototype(
            resumed,
            proto,
            generate_constraints(proto.graph),
            engine2,
        )

        # Compare with an uninterrupted run.
        direct_state = SearchState.initial(g, template)
        engine3 = Engine(PartitionedGraph(g, 2), MessageStats(2))
        direct = search_prototype(
            direct_state, proto, generate_constraints(proto.graph), engine3
        )
        assert outcome.solution_vertices == direct.solution_vertices
        assert outcome.solution_edges == direct.solution_edges
