"""Tests for the span tracer: nesting, counters, exporters, null parity."""

import json

import pytest

from repro.core.pipeline import PipelineOptions, run_pipeline
from repro.core.template import PatternTemplate
from repro.graph.generators import planted_graph
from repro.runtime.trace import NULL_TRACER, NullTracer, Span, Tracer

TEMPLATE_EDGES = [(0, 1), (1, 2), (2, 0), (2, 3)]
TEMPLATE_LABELS = [1, 2, 3, 4]


def template():
    return PatternTemplate.from_edges(
        TEMPLATE_EDGES, {i: l for i, l in enumerate(TEMPLATE_LABELS)},
        name="tri+tail",
    )


def graph(seed=11):
    return planted_graph(
        60, 150, TEMPLATE_EDGES, TEMPLATE_LABELS, copies=3, seed=seed
    )


class TestSpanNesting:
    def test_children_attach_to_open_parent(self):
        tracer = Tracer()
        with tracer.span("pipeline") as root:
            with tracer.span("level", distance=1) as level:
                with tracer.span("lcc"):
                    pass
                with tracer.span("nlcc"):
                    pass
        assert tracer.roots == [root]
        assert root.children == [level]
        assert [c.name for c in level.children] == ["lcc", "nlcc"]

    def test_sibling_order_is_execution_order(self):
        tracer = Tracer()
        with tracer.span("pipeline"):
            for distance in (2, 1, 0):
                with tracer.span("level", distance=distance):
                    pass
        distances = [c.attrs["distance"] for c in tracer.roots[0].children]
        assert distances == [2, 1, 0]

    def test_timestamps_nest(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert outer.start_s <= inner.start_s <= inner.end_s <= outer.end_s
        assert outer.duration_s >= inner.duration_s
        assert outer.self_s == pytest.approx(
            outer.duration_s - inner.duration_s
        )

    def test_multiple_roots(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [r.name for r in tracer.roots] == ["first", "second"]

    def test_current_and_stack_discipline(self):
        tracer = Tracer()
        assert tracer.current is None
        with tracer.span("a") as a:
            assert tracer.current is a
            with tracer.span("b") as b:
                assert tracer.current is b
            assert tracer.current is a
        assert tracer.current is None


class TestCounters:
    def test_add_is_additive(self):
        tracer = Tracer()
        with tracer.span("lcc") as span:
            span.add(messages=3, visits=2)
            span.add(messages=4)
        assert span.counters == {"messages": 7, "visits": 2}

    def test_tracer_add_targets_innermost(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            tracer.add(messages=1)
            with tracer.span("inner") as inner:
                tracer.add(messages=10)
        assert outer.counters == {"messages": 1}
        assert inner.counters == {"messages": 10}
        # outside any span: silently dropped
        tracer.add(messages=99)

    def test_total_sums_subtree(self):
        tracer = Tracer()
        with tracer.span("proto") as proto:
            proto.add(messages=1)
            with tracer.span("lcc") as lcc:
                lcc.add(messages=5)
            with tracer.span("nlcc") as nlcc:
                nlcc.add(messages=7)
        assert proto.total("messages") == 13
        assert proto.total("absent") == 0

    def test_record_span_inserts_closed_child(self):
        tracer = Tracer()
        with tracer.span("lcc") as parent:
            tracer.record_span(
                "round", 1.0, 2.5, counters={"messages": 9, "worklist": 4}
            )
        child, = parent.children
        assert child.name == "round"
        assert child.duration_s == pytest.approx(1.5)
        assert child.counters == {"messages": 9, "worklist": 4}


class TestAttachAndPickle:
    def test_payload_round_trip(self):
        tracer = Tracer()
        with tracer.span("prototype", proto=3) as span:
            span.add(messages=2)
            with tracer.span("lcc"):
                pass
        restored = Span.from_payload(span.to_payload())
        assert restored.name == "prototype"
        assert restored.attrs == {"proto": 3}
        assert restored.counters == {"messages": 2}
        assert [c.name for c in restored.children] == ["lcc"]
        assert restored.duration_s == pytest.approx(span.duration_s)

    def test_attach_grafts_under_current_span(self):
        worker = Tracer()
        with worker.span("prototype", proto=1):
            pass
        payloads = [s.to_payload() for s in worker.roots]

        parent = Tracer()
        with parent.span("level", distance=1) as level:
            parent.attach(payloads, worker=1234)
        grafted, = level.children
        assert grafted.name == "prototype"
        assert grafted.attrs["worker"] == 1234

    def test_attach_without_open_span_adds_roots(self):
        worker = Tracer()
        with worker.span("prototype"):
            pass
        parent = Tracer()
        parent.attach([s.to_payload() for s in worker.roots])
        assert [r.name for r in parent.roots] == ["prototype"]

    def test_pickled_tracer_arrives_empty_but_enabled(self):
        import pickle

        tracer = Tracer()
        with tracer.span("pipeline"):
            clone = pickle.loads(pickle.dumps(tracer))
        assert clone.enabled
        assert clone.roots == []
        # and it is immediately usable
        with clone.span("fresh"):
            pass
        assert [r.name for r in clone.roots] == ["fresh"]


class TestExporters:
    def _traced_run(self):
        tracer = Tracer()
        run_pipeline(
            graph(), template(), 1,
            PipelineOptions(num_ranks=3, tracer=tracer),
        )
        return tracer

    def test_chrome_trace_round_trip(self, tmp_path):
        from repro.analysis.tracereport import load_trace

        tracer = self._traced_run()
        path = tmp_path / "trace.json"
        tracer.write_chrome_trace(path)
        document = json.loads(path.read_text())
        assert "traceEvents" in document
        assert all(e["ph"] == "X" for e in document["traceEvents"])

        records = load_trace(path)
        original = tracer._flat_records()
        assert len(records) == len(original)
        for got, want in zip(records, original):
            assert got["name"] == want["name"]
            assert got["span_id"] == want["span_id"]
            assert got["parent_id"] == want["parent_id"]
            assert got["depth"] == want["depth"]
            assert got["counters"] == want["counters"]
            assert got["dur"] == pytest.approx(want["dur"], abs=1e-5)

    def test_jsonl_round_trip(self, tmp_path):
        from repro.analysis.tracereport import load_trace

        tracer = self._traced_run()
        path = tmp_path / "trace.jsonl"
        tracer.write_jsonl(path)
        records = load_trace(path)
        original = tracer._flat_records()
        assert len(records) == len(original)
        assert [r["name"] for r in records] == [r["name"] for r in original]

    def test_span_taxonomy(self):
        tracer = self._traced_run()
        assert [r.name for r in tracer.roots] == ["pipeline"]
        root = tracer.roots[0]
        level_distances = [
            c.attrs["distance"] for c in root.children if c.name == "level"
        ]
        assert level_distances == [1, 0]
        assert tracer.find("prototype")
        assert tracer.find("lcc")
        assert tracer.find("nlcc")
        rounds = tracer.find("round")
        assert rounds and any(
            s.counters.get("messages", 0) > 0 for s in rounds
        )
        # lcc spans carry pruning counters and contain their rounds
        lcc = tracer.find("lcc")[0]
        assert "vertices_pruned" in lcc.counters
        assert all(c.name == "round" for c in lcc.children)


class TestNullTracer:
    def test_null_is_inert(self):
        tracer = NullTracer()
        with tracer.span("anything", k=1) as span:
            span.add(messages=5)
            tracer.add(visits=2)
        assert span.counters == {}
        assert tracer.roots == []
        tracer.record_span("round", 0.0, 1.0)
        tracer.attach([{"name": "x"}])
        assert not tracer.enabled

    def test_traced_and_untraced_results_identical(self):
        g, t = graph(), template()
        untraced = run_pipeline(g, t, 1, PipelineOptions(num_ranks=3))
        tracer = Tracer()
        traced = run_pipeline(
            g, t, 1, PipelineOptions(num_ranks=3, tracer=tracer)
        )
        assert traced.match_vectors == untraced.match_vectors
        assert traced.message_summary == untraced.message_summary
        assert traced.nlcc_cache_stats == untraced.nlcc_cache_stats
        assert [
            (lvl.distance, lvl.union_vertices, lvl.union_edges,
             lvl.post_lcc_vertices, lvl.post_lcc_edges)
            for lvl in traced.levels
        ] == [
            (lvl.distance, lvl.union_vertices, lvl.union_edges,
             lvl.post_lcc_vertices, lvl.post_lcc_edges)
            for lvl in untraced.levels
        ]

    def test_default_options_use_null_tracer(self):
        assert PipelineOptions().tracer is NULL_TRACER


class TestWorkerMerge:
    def test_pooled_level_spans_are_grafted(self):
        g, t = graph(), template()
        tracer = Tracer()
        pooled = run_pipeline(
            g, t, 1,
            PipelineOptions(
                num_ranks=3, worker_processes=2, tracer=tracer
            ),
        )
        sequential = run_pipeline(g, t, 1, PipelineOptions(num_ranks=3))
        assert pooled.match_vectors == sequential.match_vectors

        protos = tracer.find("prototype")
        # level 1 has 3 prototypes (pooled), level 0 has 1 (in-process)
        assert len(protos) == 4
        workers = {
            s.attrs.get("worker") for s in protos if "worker" in s.attrs
        }
        assert workers, "no worker-labeled prototype spans were grafted"
        assert all(isinstance(w, int) for w in workers)
        # grafted subtrees keep their structure and land under a level span
        root = tracer.roots[0]
        level1 = next(
            c for c in root.children
            if c.name == "level" and c.attrs["distance"] == 1
        )
        grafted = [c for c in level1.children if c.name == "prototype"]
        assert len(grafted) == 3
        assert all(s.find("lcc") for s in grafted)

    def test_exploratory_and_checkpointed_modes_traced(self, tmp_path):
        from repro.core.restart import run_pipeline_with_checkpoints
        from repro.core.topdown import exploratory_search

        g, t = graph(), template()
        tracer = Tracer()
        exploratory_search(
            g, t, options=PipelineOptions(num_ranks=3, tracer=tracer)
        )
        assert tracer.roots[0].attrs["mode"] == "exploratory"

        tracer2 = Tracer()
        run_pipeline_with_checkpoints(
            g, t, 1, tmp_path / "ckpt",
            options=PipelineOptions(num_ranks=3, tracer=tracer2),
        )
        assert tracer2.roots[0].attrs["mode"] == "checkpointed"
        assert tracer2.find("level")
