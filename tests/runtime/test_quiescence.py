"""Tests for Safra-style quiescence detection accounting."""

import pytest

from repro.errors import EngineError
from repro.graph import from_edges
from repro.runtime import Engine, MessageStats, PartitionedGraph, Visitor
from repro.runtime.quiescence import SafraDetector


class TestDetector:
    def test_minimum_two_circuits(self):
        detector = SafraDetector(4)
        for rank in range(4):
            detector.rank_idle(rank)
        detector.sweep_completed()
        assert detector.circuits() == 2
        assert detector.control_messages() == 8

    def test_reactivation_forces_extra_circuit(self):
        detector = SafraDetector(2)
        detector.rank_idle(0)
        detector.rank_activated(1)
        detector.sweep_completed()
        detector.rank_activated(0)  # 0 was seen idle, now has work again
        detector.sweep_completed()
        assert detector.reactivation_waves == 1
        assert detector.circuits() == 3

    def test_multiple_waves_counted_once_per_sweep(self):
        detector = SafraDetector(4)
        for rank in range(4):
            detector.rank_idle(rank)
        detector.sweep_completed()
        detector.rank_activated(0)
        detector.rank_activated(1)  # same wave
        detector.sweep_completed()
        assert detector.reactivation_waves == 1

    def test_activation_without_prior_idle_is_free(self):
        detector = SafraDetector(2)
        detector.rank_activated(0)
        detector.sweep_completed()
        assert detector.reactivation_waves == 0

    def test_finish_once(self):
        detector = SafraDetector(2)
        detector.finish()
        with pytest.raises(EngineError):
            detector.finish()

    def test_zero_ranks_rejected(self):
        with pytest.raises(EngineError):
            SafraDetector(0)

    def test_reset(self):
        detector = SafraDetector(2)
        detector.rank_idle(0)
        detector.sweep_completed()
        detector.rank_activated(0)
        detector.reset()
        assert detector.reactivation_waves == 0


class TestEngineIntegration:
    def pgraph(self):
        g = from_edges([(0, 1), (1, 2), (2, 3)])
        return PartitionedGraph(g, 2, assignment={0: 0, 1: 1, 2: 0, 3: 1})

    def test_control_messages_recorded(self):
        engine = Engine(self.pgraph())
        engine.do_traversal([Visitor(0)], lambda ctx, vis: None)
        assert engine.stats.control_messages >= 2 * 2  # >= 2 circuits x ranks
        assert engine.stats.detection_circuits >= 2

    def test_ping_pong_needs_more_circuits(self):
        """Work bouncing between ranks reactivates idle ranks."""
        engine = Engine(self.pgraph())

        def visit(ctx, vis):
            depth = vis.payload
            if depth < 6:
                # forward to the other rank's vertex only
                target = 1 if vis.target in (0, 2) else 0
                ctx.push(Visitor(target, depth + 1, source=vis.target))

        quiet = Engine(self.pgraph())
        quiet.do_traversal([Visitor(0, 99)], lambda c, v: None)
        engine.do_traversal([Visitor(0, 0)], visit)
        assert engine.stats.control_messages >= quiet.stats.control_messages

    def test_control_messages_in_summary_and_cost(self):
        from repro.runtime import CostModel

        engine = Engine(self.pgraph())
        engine.do_traversal([Visitor(0)], lambda ctx, vis: None)
        summary = engine.stats.summary()
        assert summary["control_messages"] == engine.stats.control_messages
        with_control = CostModel().makespan(engine.stats)
        free_control = CostModel(network_message_cost=0.0).makespan(engine.stats)
        assert with_control > free_control

    def test_per_traversal_reset(self):
        engine = Engine(self.pgraph())
        engine.do_traversal([Visitor(0)], lambda ctx, vis: None)
        first = engine.stats.control_messages
        engine.do_traversal([Visitor(0)], lambda ctx, vis: None)
        assert engine.stats.control_messages == 2 * first
