"""Tests for the VF2-style matcher, canonical forms and automorphisms."""

from repro.graph import (
    are_isomorphic,
    automorphism_count,
    canonical_form,
    count_subgraph_isomorphisms,
    find_subgraph_isomorphisms,
    from_edges,
    has_match,
)
from repro.graph.graph import Graph


def labeled(edges, labels):
    return from_edges(edges, labels={i: l for i, l in enumerate(labels)})


class TestSubgraphIsomorphism:
    def test_triangle_in_k4(self):
        k4 = labeled(
            [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)], [0, 0, 0, 0]
        )
        triangle = labeled([(0, 1), (1, 2), (2, 0)], [0, 0, 0])
        # 4 triangles x 6 automorphisms = 24 mappings
        assert count_subgraph_isomorphisms(triangle, k4) == 24

    def test_labels_must_match(self):
        pattern = labeled([(0, 1)], [1, 2])
        target = labeled([(0, 1)], [1, 3])
        assert not has_match(pattern, target)

    def test_mapping_is_edge_preserving(self):
        pattern = labeled([(0, 1), (1, 2)], [0, 1, 0])
        target = labeled([(0, 1), (1, 2), (2, 3)], [0, 1, 0, 1])
        for mapping in find_subgraph_isomorphisms(pattern, target):
            for u, v in pattern.edges():
                assert target.has_edge(mapping[u], mapping[v])

    def test_injective(self):
        pattern = labeled([(0, 1), (1, 2)], [0, 0, 0])
        target = labeled([(0, 1), (1, 2)], [0, 0, 0])
        for mapping in find_subgraph_isomorphisms(pattern, target):
            assert len(set(mapping.values())) == len(mapping)

    def test_non_induced_allows_extra_edges(self):
        path = labeled([(0, 1), (1, 2)], [0, 0, 0])
        triangle = labeled([(0, 1), (1, 2), (2, 0)], [0, 0, 0])
        assert has_match(path, triangle)

    def test_limit(self):
        pattern = labeled([(0, 1)], [0, 0])
        target = labeled([(0, 1), (1, 2), (2, 0)], [0, 0, 0])
        assert len(list(find_subgraph_isomorphisms(pattern, target, limit=2))) == 2

    def test_candidate_filter(self):
        pattern = labeled([(0, 1)], [0, 0])
        target = labeled([(0, 1)], [0, 0])
        filtered = list(
            find_subgraph_isomorphisms(
                pattern, target, candidate_filter=lambda pv, tv: pv == tv
            )
        )
        assert filtered == [{0: 0, 1: 1}]

    def test_empty_pattern_matches_once(self):
        assert list(find_subgraph_isomorphisms(Graph(), labeled([(0, 1)], [0, 0]))) == [
            {}
        ]

    def test_single_vertex_pattern(self):
        pattern = Graph()
        pattern.add_vertex(0, 7)
        target = labeled([(0, 1)], [7, 7])
        assert count_subgraph_isomorphisms(pattern, target) == 2

    def test_disconnected_pattern(self):
        pattern = Graph()
        pattern.add_vertex(0, 1)
        pattern.add_vertex(1, 2)
        target = labeled([(0, 1)], [1, 2])
        assert count_subgraph_isomorphisms(pattern, target) == 1


class TestAutomorphisms:
    def test_triangle(self):
        assert automorphism_count(labeled([(0, 1), (1, 2), (2, 0)], [0, 0, 0])) == 6

    def test_labels_break_symmetry(self):
        assert automorphism_count(labeled([(0, 1), (1, 2), (2, 0)], [0, 0, 1])) == 2

    def test_path(self):
        assert automorphism_count(labeled([(0, 1), (1, 2)], [0, 0, 0])) == 2

    def test_empty(self):
        assert automorphism_count(Graph()) == 1


class TestGraphIsomorphism:
    def test_isomorphic_relabeled(self):
        a = labeled([(0, 1), (1, 2), (2, 0)], [1, 2, 3])
        b = from_edges([(5, 7), (7, 9), (9, 5)], labels={5: 2, 7: 3, 9: 1})
        assert are_isomorphic(a, b)

    def test_different_edge_count(self):
        a = labeled([(0, 1), (1, 2)], [0, 0, 0])
        b = labeled([(0, 1), (1, 2), (2, 0)], [0, 0, 0])
        assert not are_isomorphic(a, b)

    def test_same_degrees_different_structure(self):
        # C6 vs two triangles: both 3-regular... actually both 2-regular.
        c6 = labeled([(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)], [0] * 6)
        two_triangles = from_edges(
            [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)], labels={i: 0 for i in range(6)}
        )
        assert not are_isomorphic(c6, two_triangles)

    def test_label_distribution_must_match(self):
        a = labeled([(0, 1)], [0, 0])
        b = labeled([(0, 1)], [0, 1])
        assert not are_isomorphic(a, b)


class TestCanonicalForm:
    def test_invariant_under_relabeling(self):
        a = labeled([(0, 1), (1, 2), (2, 0), (2, 3)], [1, 2, 3, 4])
        b = from_edges(
            [(10, 20), (20, 30), (30, 10), (30, 40)],
            labels={10: 1, 20: 2, 30: 3, 40: 4},
        )
        assert canonical_form(a) == canonical_form(b)

    def test_distinguishes_structures(self):
        path = labeled([(0, 1), (1, 2), (2, 3)], [0, 0, 0, 0])
        star = labeled([(0, 1), (0, 2), (0, 3)], [0, 0, 0, 0])
        assert canonical_form(path) != canonical_form(star)

    def test_distinguishes_labels(self):
        a = labeled([(0, 1)], [0, 0])
        b = labeled([(0, 1)], [0, 1])
        assert canonical_form(a) != canonical_form(b)

    def test_empty(self):
        assert canonical_form(Graph()) == ()

    def test_agrees_with_are_isomorphic(self):
        import itertools

        graphs = []
        for edges in itertools.combinations([(0, 1), (1, 2), (2, 0), (2, 3)], 3):
            g = Graph()
            for v in range(4):
                g.add_vertex(v, v % 2)
            for u, v in edges:
                g.add_edge(u, v)
            graphs.append(g)
        for a, b in itertools.combinations(graphs, 2):
            assert are_isomorphic(a, b) == (canonical_form(a) == canonical_form(b))
