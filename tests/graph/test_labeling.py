"""Tests for vertex labeling strategies."""

import pytest

from repro.graph import (
    apply_degree_labels,
    coverage,
    degree_log2_label,
    from_edges,
    label_frequency,
    zipf_labels,
)
from repro.graph.labeling import apply_labels


class TestDegreeLabels:
    @pytest.mark.parametrize(
        "degree,label",
        [(0, 0), (1, 1), (2, 2), (3, 2), (4, 3), (7, 3), (8, 4), (1000, 10)],
    )
    def test_log2_rule(self, degree, label):
        assert degree_log2_label(degree) == label

    def test_negative_degree_rejected(self):
        with pytest.raises(ValueError):
            degree_log2_label(-1)

    def test_apply_degree_labels(self):
        g = from_edges([(0, 1), (0, 2), (0, 3)])
        apply_degree_labels(g)
        assert g.label(0) == 2  # degree 3 -> ceil(log2(4)) = 2
        assert g.label(1) == 1


class TestZipfLabels:
    def test_length_and_range(self):
        labels = zipf_labels(500, 8, seed=1)
        assert len(labels) == 500
        assert all(0 <= l < 8 for l in labels)

    def test_skew(self):
        labels = zipf_labels(5000, 10, seed=2)
        counts = [labels.count(i) for i in range(10)]
        assert counts[0] > counts[-1]

    def test_zero_labels_rejected(self):
        with pytest.raises(ValueError):
            zipf_labels(10, 0)

    def test_deterministic(self):
        assert zipf_labels(50, 4, seed=3) == zipf_labels(50, 4, seed=3)


class TestFrequencyAndCoverage:
    def test_label_frequency_sums_to_one(self):
        g = from_edges([(0, 1), (1, 2)], labels={0: 1, 1: 1, 2: 2})
        freq = label_frequency(g)
        assert sum(freq.values()) == pytest.approx(1.0)
        assert list(freq)[0] == 1  # most frequent first

    def test_coverage(self):
        g = from_edges([(0, 1), (1, 2)], labels={0: 1, 1: 1, 2: 2})
        assert coverage(g, [1]) == pytest.approx(2 / 3)
        assert coverage(g, [1, 2]) == pytest.approx(1.0)

    def test_coverage_empty_graph(self):
        from repro.graph.graph import Graph

        assert coverage(Graph(), [1]) == 0.0

    def test_apply_labels_cycles(self):
        g = from_edges([(0, 1), (1, 2)])
        apply_labels(g, [5, 6])
        assert [g.label(v) for v in sorted(g.vertices())] == [5, 6, 5]
