"""Tests for GraphBuilder and graph I/O round-trips."""

import pytest

from repro.errors import GraphError
from repro.graph import (
    Graph,
    GraphBuilder,
    read_edge_list,
    read_json,
    read_label_file,
    undirected_simple,
    write_edge_list,
    write_json,
    write_labels,
)


class TestGraphBuilder:
    def test_builds_simple_graph(self):
        g = GraphBuilder().add_edges([(0, 1), (1, 2)]).build()
        assert g.num_vertices == 3
        assert g.num_edges == 2

    def test_deduplicates_edges(self):
        builder = GraphBuilder().add_edges([(0, 1), (1, 0), (0, 1)])
        assert builder.build().num_edges == 1
        assert builder.duplicate_edges == 2

    def test_drops_self_loops(self):
        builder = GraphBuilder().add_edges([(3, 3), (0, 1)])
        g = builder.build()
        assert builder.self_loops == 1
        assert not g.has_vertex(3)

    def test_set_labels_creates_vertices(self):
        g = GraphBuilder().set_labels({5: 2}).build()
        assert g.label(5) == 2

    def test_relabel_contiguous(self):
        g = GraphBuilder().add_edges([(10, 20), (20, 30)]).build(
            relabel_contiguous=True
        )
        assert sorted(g.vertices()) == [0, 1, 2]
        assert g.num_edges == 2

    def test_undirected_simple_helper(self):
        g = undirected_simple([(0, 1), (1, 1)], labels={0: 4})
        assert g.num_edges == 1
        assert g.label(0) == 4


class TestEdgeListIO:
    def test_round_trip(self, tmp_path):
        g = undirected_simple([(0, 1), (1, 2), (2, 0)], labels={0: 1, 1: 2, 2: 3})
        edges = tmp_path / "g.edges"
        labels = tmp_path / "g.labels"
        write_edge_list(g, edges)
        write_labels(g, labels)
        loaded = read_edge_list(edges, labels)
        assert loaded == g

    def test_read_skips_comments_and_blanks(self, tmp_path):
        path = tmp_path / "g.edges"
        path.write_text("# header\n\n0 1\n1 2\n")
        g = read_edge_list(path)
        assert g.num_edges == 2

    def test_read_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text("0\n")
        with pytest.raises(GraphError):
            read_edge_list(path)

    def test_read_label_file_malformed_raises(self, tmp_path):
        path = tmp_path / "bad.labels"
        path.write_text("0 1 2\n")
        with pytest.raises(GraphError):
            read_label_file(path)

    def test_read_deduplicates(self, tmp_path):
        path = tmp_path / "dup.edges"
        path.write_text("0 1\n1 0\n2 2\n")
        g = read_edge_list(path)
        assert g.num_edges == 1


class TestJsonIO:
    def test_round_trip(self, tmp_path):
        g = undirected_simple([(0, 1), (1, 2)], labels={0: 1, 1: 2, 2: 3})
        path = tmp_path / "g.json"
        write_json(g, path)
        assert read_json(path) == g

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(GraphError):
            read_json(path)

    def test_empty_graph_round_trip(self, tmp_path):
        path = tmp_path / "empty.json"
        write_json(Graph(), path)
        assert read_json(path).num_vertices == 0


class TestEdgeLabelRoundTrips:
    def make(self):
        g = undirected_simple([(0, 1), (1, 2)], labels={0: 1, 1: 2, 2: 3})
        g.add_edge(0, 1, 7)  # relabel existing edge
        return g

    def test_edge_list_round_trip_with_labels(self, tmp_path):
        g = self.make()
        path = tmp_path / "el.edges"
        write_edge_list(g, path)
        loaded = read_edge_list(path)
        assert loaded.edge_label(0, 1) == 7
        assert loaded.edge_label(1, 2) is None
        assert loaded == g.copy() or loaded.edge_labels() == g.edge_labels()

    def test_json_round_trip_with_labels(self, tmp_path):
        g = self.make()
        path = tmp_path / "el.json"
        write_json(g, path)
        assert read_json(path) == g

    def test_checkpoint_round_trip_with_labels(self, tmp_path):
        from repro.runtime import load_checkpoint, save_checkpoint

        g = self.make()
        save_checkpoint(tmp_path / "c.json", g, {0: [1]})
        restored, _state, _meta = load_checkpoint(tmp_path / "c.json")
        assert restored == g

    def test_malformed_four_column_line(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text("0 1 2 3\n")
        with pytest.raises(GraphError):
            read_edge_list(path)
