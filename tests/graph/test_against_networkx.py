"""Cross-validation of graph algorithms against networkx.

networkx is an independent, widely-trusted implementation; agreeing with
it on randomized inputs is strong evidence for the substrate the matching
engine builds on.
"""

import networkx as nx
import pytest

from repro.graph import (
    connected_components,
    is_connected,
    k_core,
    shortest_path_lengths,
)
from repro.graph.generators import gnm_graph, webgraph
from repro.graph.isomorphism import count_subgraph_isomorphisms
from repro.graph.metrics import (
    average_local_clustering,
    degree_assortativity,
    global_clustering_coefficient,
)


def to_networkx(graph):
    result = nx.Graph()
    result.add_nodes_from(graph.vertices())
    result.add_edges_from(graph.edges())
    return result


@pytest.fixture(params=[0, 1, 2], ids=["seed0", "seed1", "seed2"])
def random_graph(request):
    return gnm_graph(60, 140, num_labels=1, seed=request.param)


class TestStructuralAgreement:
    def test_connected_components(self, random_graph):
        ours = sorted(sorted(c) for c in connected_components(random_graph))
        theirs = sorted(
            sorted(c) for c in nx.connected_components(to_networkx(random_graph))
        )
        assert sorted(map(tuple, ours)) == sorted(map(tuple, theirs))
        assert is_connected(random_graph) == nx.is_connected(
            to_networkx(random_graph)
        )

    def test_shortest_path_lengths(self, random_graph):
        source = next(random_graph.vertices())
        ours = shortest_path_lengths(random_graph, source)
        theirs = nx.single_source_shortest_path_length(
            to_networkx(random_graph), source
        )
        assert ours == dict(theirs)

    def test_k_core(self, random_graph):
        for k in (2, 3):
            ours = k_core(random_graph, k)
            theirs = set(nx.k_core(to_networkx(random_graph), k).nodes())
            assert ours == theirs


class TestMetricAgreement:
    def test_global_clustering(self, random_graph):
        assert global_clustering_coefficient(random_graph) == pytest.approx(
            nx.transitivity(to_networkx(random_graph))
        )

    def test_average_local_clustering(self, random_graph):
        assert average_local_clustering(random_graph) == pytest.approx(
            nx.average_clustering(to_networkx(random_graph))
        )

    def test_assortativity_on_skewed_graph(self):
        graph = webgraph(300, seed=7)
        ours = degree_assortativity(graph)
        theirs = nx.degree_assortativity_coefficient(to_networkx(graph))
        assert ours == pytest.approx(theirs, abs=1e-9)


class TestIsomorphismAgreement:
    @pytest.mark.parametrize("pattern_edges,name", [
        ([(0, 1), (1, 2), (2, 0)], "triangle"),
        ([(0, 1), (1, 2), (2, 3)], "path4"),
        ([(0, 1), (0, 2), (0, 3)], "star"),
        ([(0, 1), (1, 2), (2, 3), (3, 0)], "square"),
    ])
    def test_subgraph_mapping_counts(self, pattern_edges, name):
        from repro.graph import from_edges

        target = gnm_graph(25, 60, num_labels=1, seed=9)
        pattern = from_edges(pattern_edges)
        ours = count_subgraph_isomorphisms(pattern, target)
        matcher = nx.algorithms.isomorphism.GraphMatcher(
            to_networkx(target), to_networkx(pattern)
        )
        theirs = sum(1 for _ in matcher.subgraph_monomorphisms_iter())
        assert ours == theirs
