"""Stateful property testing of Graph mutation invariants.

A hypothesis rule-based machine applies random mutations (add/remove
vertices and edges, with and without labels) against both the Graph and a
naive reference model, checking structural invariants after every step.
"""

import hypothesis.strategies as st
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.graph.graph import Graph, canonical_edge

VERTICES = st.integers(0, 12)
LABELS = st.integers(0, 4)


class GraphMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.graph = Graph()
        self.model_vertices = {}          # vertex -> label
        self.model_edges = {}             # canonical edge -> label or None

    # ------------------------------------------------------------------
    @rule(v=VERTICES, label=LABELS)
    def add_vertex(self, v, label):
        self.graph.add_vertex(v, label)
        self.model_vertices[v] = label

    @rule(u=VERTICES, v=VERTICES, label=st.one_of(st.none(), LABELS))
    def add_edge(self, u, v, label):
        if u == v or u not in self.model_vertices or v not in self.model_vertices:
            return
        existed = canonical_edge(u, v) in self.model_edges
        self.graph.add_edge(u, v, label)
        key = canonical_edge(u, v)
        if not existed:
            self.model_edges[key] = label
        elif label is not None:
            self.model_edges[key] = label

    @rule(u=VERTICES, v=VERTICES)
    def remove_edge(self, u, v):
        key = canonical_edge(u, v)
        if key not in self.model_edges:
            return
        self.graph.remove_edge(u, v)
        del self.model_edges[key]

    @rule(v=VERTICES)
    def remove_vertex(self, v):
        if v not in self.model_vertices:
            return
        self.graph.remove_vertex(v)
        del self.model_vertices[v]
        self.model_edges = {
            edge: label
            for edge, label in self.model_edges.items()
            if v not in edge
        }

    # ------------------------------------------------------------------
    @invariant()
    def vertex_set_matches(self):
        assert set(self.graph.vertices()) == set(self.model_vertices)
        for v, label in self.model_vertices.items():
            assert self.graph.label(v) == label

    @invariant()
    def edge_set_matches(self):
        assert set(self.graph.edges()) == set(self.model_edges)
        assert self.graph.num_edges == len(self.model_edges)

    @invariant()
    def adjacency_symmetric(self):
        for v in self.graph.vertices():
            for u in self.graph.neighbors(v):
                assert v in self.graph.neighbors(u)

    @invariant()
    def edge_labels_match(self):
        for (u, v), label in self.model_edges.items():
            assert self.graph.edge_label(u, v) == label
        # no stale labels for removed edges
        for edge in self.graph.edge_labels():
            assert edge in self.model_edges

    @invariant()
    def degree_sum_is_twice_edges(self):
        total = sum(self.graph.degree(v) for v in self.graph.vertices())
        assert total == 2 * self.graph.num_edges


TestGraphMachine = GraphMachine.TestCase
TestGraphMachine.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None
)
