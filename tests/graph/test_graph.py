"""Unit tests for the core Graph structure."""

import pytest

from repro.errors import GraphError
from repro.graph import DegreeStatistics, Graph, canonical_edge, from_edges


def triangle():
    g = Graph()
    for v, lab in [(0, 1), (1, 2), (2, 3)]:
        g.add_vertex(v, lab)
    g.add_edge(0, 1)
    g.add_edge(1, 2)
    g.add_edge(2, 0)
    return g


class TestConstruction:
    def test_empty_graph(self):
        g = Graph()
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert len(g) == 0

    def test_directed_rejected(self):
        with pytest.raises(GraphError):
            Graph(directed=True)

    def test_add_vertex_and_label(self):
        g = Graph()
        g.add_vertex(5, 9)
        assert 5 in g
        assert g.label(5) == 9

    def test_relabel_existing_vertex(self):
        g = Graph()
        g.add_vertex(1, 0)
        g.add_vertex(1, 7)
        assert g.label(1) == 7
        assert g.num_vertices == 1

    def test_add_edge_both_directions(self):
        g = triangle()
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 0)

    def test_duplicate_edge_not_counted(self):
        g = triangle()
        assert g.add_edge(0, 1) is False
        assert g.num_edges == 3

    def test_self_loop_rejected(self):
        g = triangle()
        with pytest.raises(GraphError):
            g.add_edge(1, 1)

    def test_edge_to_unknown_vertex_rejected(self):
        g = triangle()
        with pytest.raises(GraphError):
            g.add_edge(0, 99)

    def test_from_edges_creates_vertices(self):
        g = from_edges([(0, 1), (1, 2)], labels={2: 5})
        assert g.num_vertices == 3
        assert g.label(0) == 0
        assert g.label(2) == 5

    def test_from_edges_isolated_labeled_vertex(self):
        g = from_edges([(0, 1)], labels={9: 3})
        assert 9 in g
        assert g.degree(9) == 0


class TestRemoval:
    def test_remove_edge(self):
        g = triangle()
        g.remove_edge(0, 1)
        assert not g.has_edge(0, 1)
        assert g.num_edges == 2

    def test_remove_missing_edge_raises(self):
        g = triangle()
        g.remove_edge(0, 1)
        with pytest.raises(GraphError):
            g.remove_edge(0, 1)

    def test_remove_vertex_removes_incident_edges(self):
        g = triangle()
        g.remove_vertex(0)
        assert g.num_vertices == 2
        assert g.num_edges == 1
        assert not g.has_edge(1, 0)

    def test_remove_missing_vertex_raises(self):
        g = triangle()
        with pytest.raises(GraphError):
            g.remove_vertex(42)


class TestQueries:
    def test_edges_canonical_and_unique(self):
        g = triangle()
        assert sorted(g.edges()) == [(0, 1), (0, 2), (1, 2)]

    def test_neighbors(self):
        g = triangle()
        assert g.neighbors(0) == {1, 2}

    def test_neighbors_unknown_raises(self):
        g = triangle()
        with pytest.raises(GraphError):
            g.neighbors(10)

    def test_degree(self):
        g = triangle()
        assert g.degree(1) == 2

    def test_label_unknown_raises(self):
        g = triangle()
        with pytest.raises(GraphError):
            g.label(10)

    def test_label_set_and_counts(self):
        g = triangle()
        assert g.label_set() == {1, 2, 3}
        g.add_vertex(3, 1)
        assert g.label_counts()[1] == 2

    def test_vertices_with_label(self):
        g = triangle()
        g.add_vertex(7, 2)
        assert sorted(g.vertices_with_label(2)) == [1, 7]

    def test_canonical_edge(self):
        assert canonical_edge(5, 2) == (2, 5)
        assert canonical_edge(2, 5) == (2, 5)

    def test_equality(self):
        assert triangle() == triangle()
        other = triangle()
        other.remove_edge(0, 1)
        assert triangle() != other

    def test_graphs_unhashable(self):
        with pytest.raises(TypeError):
            hash(triangle())


class TestDerivedGraphs:
    def test_copy_is_independent(self):
        g = triangle()
        clone = g.copy()
        clone.remove_edge(0, 1)
        assert g.has_edge(0, 1)
        assert not clone.has_edge(0, 1)

    def test_subgraph_induced(self):
        g = triangle()
        sub = g.subgraph([0, 1])
        assert sub.num_vertices == 2
        assert sub.has_edge(0, 1)
        assert sub.num_edges == 1

    def test_subgraph_ignores_unknown_vertices(self):
        g = triangle()
        sub = g.subgraph([0, 1, 99])
        assert sub.num_vertices == 2

    def test_subgraph_preserves_labels(self):
        g = triangle()
        sub = g.subgraph([2])
        assert sub.label(2) == 3

    def test_edge_subgraph(self):
        g = triangle()
        sub = g.edge_subgraph([(0, 1), (1, 2)])
        assert sub.num_edges == 2
        assert not sub.has_edge(0, 2)

    def test_edge_subgraph_missing_edge_raises(self):
        g = triangle()
        g.remove_edge(0, 1)
        with pytest.raises(GraphError):
            g.edge_subgraph([(0, 1)])


class TestStatisticsAndExport:
    def test_degree_statistics(self):
        g = triangle()
        g.add_vertex(9, 0)
        stats = g.degree_statistics()
        assert stats.d_max == 2
        assert stats.d_avg == pytest.approx(6 / 4)

    def test_degree_statistics_empty(self):
        stats = Graph().degree_statistics()
        assert tuple(stats) == (0, 0.0, 0.0)

    def test_degree_statistics_iterable(self):
        d_max, d_avg, d_std = DegreeStatistics(3, 1.5, 0.5)
        assert (d_max, d_avg, d_std) == (3, 1.5, 0.5)

    def test_to_csr_round_trip(self):
        g = triangle()
        offsets, targets, labels, id_map = g.to_csr()
        assert offsets[-1] == 2 * g.num_edges
        assert len(labels) == g.num_vertices
        # Each vertex's slice contains its neighbors' dense ids.
        for v in g.vertices():
            i = id_map[v]
            nbrs = {t for t in targets[offsets[i]:offsets[i + 1]]}
            assert nbrs == {id_map[u] for u in g.neighbors(v)}
