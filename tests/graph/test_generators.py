"""Tests for the synthetic dataset generators."""

import pytest

from repro.graph import coverage, is_connected
from repro.graph.generators import (
    gnm_graph,
    gnp_graph,
    imdb_graph,
    planted_graph,
    reddit_graph,
    rmat_edges,
    rmat_graph,
    scale_free_unlabeled,
    suite_graph,
    suite_graphs,
    webgraph,
)
from repro.graph.generators.imdb import GENRE, MOVIE
from repro.graph.generators.reddit import (
    AUTHOR,
    COMMENT_NEGATIVE,
    POST_POSITIVE,
    SUBREDDIT,
)
from repro.graph.generators.suite import SUITE_SHAPES
from repro.graph.generators.webgraph import DOMAIN_TO_LABEL, domain_label, plant_pattern
from repro.graph.labeling import degree_log2_label


class TestRmat:
    def test_edge_count(self):
        edges = rmat_edges(scale=6, edge_factor=4, seed=1)
        assert edges.shape == (4 * 64, 2)

    def test_vertex_range(self):
        edges = rmat_edges(scale=5, edge_factor=4, seed=2)
        assert edges.min() >= 0
        assert edges.max() < 32

    def test_deterministic(self):
        a = rmat_edges(scale=6, seed=7)
        b = rmat_edges(scale=6, seed=7)
        assert (a == b).all()

    def test_seed_changes_output(self):
        a = rmat_edges(scale=6, seed=7)
        b = rmat_edges(scale=6, seed=8)
        assert (a != b).any()

    def test_skewed_degree_distribution(self):
        g = rmat_graph(scale=9, edge_factor=8, seed=3)
        stats = g.degree_statistics()
        assert stats.d_max > 4 * stats.d_avg  # power-law-ish skew

    def test_degree_labels_applied(self):
        g = rmat_graph(scale=7, edge_factor=4, seed=0)
        for v in list(g.vertices())[:50]:
            assert g.label(v) == degree_log2_label(g.degree(v))

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            rmat_edges(scale=0)

    def test_bad_probabilities_rejected(self):
        with pytest.raises(ValueError):
            rmat_edges(scale=4, a=0.6, b=0.3, c=0.3)


class TestWebgraph:
    def test_size_and_labels(self):
        g = webgraph(500, num_labels=10, seed=1)
        assert g.num_vertices <= 500
        assert max(g.label_set()) < 10

    def test_skewed_labels(self):
        g = webgraph(2000, num_labels=10, seed=2)
        counts = g.label_counts()
        assert counts[0] > counts.get(9, 0)  # label 0 is most frequent

    def test_connected_core(self):
        g = webgraph(300, seed=3)
        assert is_connected(g)

    def test_domain_label_mapping(self):
        assert domain_label("com") == 0
        assert domain_label("org") == 1
        assert DOMAIN_TO_LABEL["ac"] == 7

    def test_unknown_domain_raises(self):
        with pytest.raises(KeyError):
            domain_label("zz")

    def test_plant_pattern_guarantees_match(self):
        from repro.graph.isomorphism import has_match
        from repro.graph.graph import Graph

        g = webgraph(200, seed=4)
        pattern_edges = [(0, 1), (1, 2), (2, 0)]
        pattern_labels = [3, 5, 8]
        planted = plant_pattern(g, pattern_edges, pattern_labels, copies=2, seed=0)
        assert len(planted) == 2
        pattern = Graph()
        for i, lab in enumerate(pattern_labels):
            pattern.add_vertex(i, lab)
        for u, v in pattern_edges:
            pattern.add_edge(u, v)
        assert has_match(pattern, g)

    def test_coverage_helper(self):
        g = webgraph(500, num_labels=5, seed=5)
        assert coverage(g, [0, 1, 2, 3, 4]) == pytest.approx(1.0)
        assert 0.0 < coverage(g, [0]) < 1.0


class TestReddit:
    def test_schema_labels(self):
        g = reddit_graph(num_authors=50, num_subreddits=5, seed=1)
        labels = g.label_counts()
        assert labels[AUTHOR] == 50
        assert labels[SUBREDDIT] == 5
        assert any(lab >= POST_POSITIVE for lab in labels)

    def test_bipartite_like_structure(self):
        g = reddit_graph(num_authors=30, seed=2)
        # Authors never connect to authors or subreddits.
        for v in g.vertices():
            if g.label(v) == AUTHOR:
                for u in g.neighbors(v):
                    assert g.label(u) not in (AUTHOR, SUBREDDIT)

    def test_planted_rdt1_matchable(self):
        from repro.core.patterns import rdt1_template
        from repro.graph.isomorphism import has_match

        g = reddit_graph(num_authors=40, planted_rdt1=2, seed=3)
        assert has_match(rdt1_template().graph, g)

    def test_comments_have_parents(self):
        g = reddit_graph(num_authors=20, seed=4)
        for v in g.vertices():
            if g.label(v) == COMMENT_NEGATIVE:
                # at least an author edge and a parent edge
                assert g.degree(v) >= 2


class TestImdb:
    def test_bipartite(self):
        g = imdb_graph(num_movies=50, seed=1)
        for u, v in g.edges():
            movie_endpoints = (g.label(u) == MOVIE) + (g.label(v) == MOVIE)
            assert movie_endpoints == 1

    def test_planted_imdb1_matchable(self):
        from repro.core.patterns import imdb1_template
        from repro.graph.isomorphism import has_match

        g = imdb_graph(num_movies=40, planted_imdb1=2, seed=2)
        assert has_match(imdb1_template().graph, g)

    def test_movies_have_genres(self):
        g = imdb_graph(num_movies=30, genres_per_movie=2, seed=3)
        for v in g.vertices():
            if g.label(v) == MOVIE and g.degree(v) > 0:
                assert any(g.label(u) == GENRE for u in g.neighbors(v))


class TestRandomLabeled:
    def test_gnm_exact_edges(self):
        g = gnm_graph(40, 100, num_labels=3, seed=1)
        assert g.num_edges == 100
        assert g.num_vertices == 40

    def test_gnm_too_many_edges(self):
        with pytest.raises(ValueError):
            gnm_graph(4, 10)

    def test_gnp_probability_extremes(self):
        assert gnp_graph(10, 0.0, seed=1).num_edges == 0
        assert gnp_graph(6, 1.0, seed=1).num_edges == 15

    def test_planted_graph_contains_pattern(self):
        from repro.graph.isomorphism import has_match
        from repro.graph.graph import Graph

        edges = [(0, 1), (1, 2), (2, 0)]
        labels = [0, 1, 2]
        g = planted_graph(30, 60, edges, labels, copies=2, seed=5)
        pattern = Graph()
        for i, lab in enumerate(labels):
            pattern.add_vertex(i, lab)
        for u, v in edges:
            pattern.add_edge(u, v)
        assert has_match(pattern, g)


class TestSuite:
    def test_all_names_present(self):
        assert set(SUITE_SHAPES) == {
            "citeseer",
            "mico",
            "patent",
            "youtube",
            "livejournal",
        }

    def test_shapes_scaled(self):
        g = suite_graph("citeseer")
        assert g.num_vertices == 330

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            suite_graph("nope")

    def test_unlabeled(self):
        g = suite_graph("mico")
        assert g.label_set() == {0}

    def test_iterator_order(self):
        names = [name for name, _g in suite_graphs()]
        assert names == list(SUITE_SHAPES)

    def test_scale_free_requires_two_vertices(self):
        with pytest.raises(ValueError):
            scale_free_unlabeled(1, 2.0)
