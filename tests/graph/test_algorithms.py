"""Tests for classical graph algorithms."""

import pytest

from repro.errors import GraphError
from repro.graph import (
    bfs_order,
    connected_components,
    from_edges,
    is_connected,
    k_core,
    shortest_path,
    shortest_path_lengths,
    simple_cycles_upto,
)
from repro.graph.algorithms import induced_edges, triangles_at
from repro.graph.graph import Graph


def path_graph(n):
    return from_edges([(i, i + 1) for i in range(n - 1)])


class TestTraversal:
    def test_bfs_order_visits_all_reachable(self):
        g = path_graph(5)
        assert bfs_order(g, 0) == [0, 1, 2, 3, 4]

    def test_bfs_unknown_source_raises(self):
        with pytest.raises(GraphError):
            bfs_order(path_graph(3), 9)

    def test_bfs_respects_components(self):
        g = from_edges([(0, 1), (2, 3)])
        assert set(bfs_order(g, 0)) == {0, 1}


class TestConnectivity:
    def test_empty_graph_connected(self):
        assert is_connected(Graph())

    def test_path_connected(self):
        assert is_connected(path_graph(4))

    def test_disconnected(self):
        assert not is_connected(from_edges([(0, 1), (2, 3)]))

    def test_components_sorted_by_size(self):
        g = from_edges([(0, 1), (1, 2), (3, 4)])
        comps = connected_components(g)
        assert [len(c) for c in comps] == [3, 2]
        assert comps[0] == {0, 1, 2}


class TestShortestPaths:
    def test_lengths(self):
        g = path_graph(4)
        assert shortest_path_lengths(g, 0) == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_path_endpoints(self):
        g = from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
        path = shortest_path(g, 0, 3)
        assert path[0] == 0 and path[-1] == 3
        assert len(path) == 3  # 0 - 2 - 3

    def test_path_to_self(self):
        g = path_graph(3)
        assert shortest_path(g, 1, 1) == [1]

    def test_no_path_returns_none(self):
        g = from_edges([(0, 1), (2, 3)])
        assert shortest_path(g, 0, 3) is None

    def test_unknown_endpoint_raises(self):
        with pytest.raises(GraphError):
            shortest_path(path_graph(3), 0, 99)


class TestKCore:
    def test_triangle_is_2core(self):
        g = from_edges([(0, 1), (1, 2), (2, 0), (2, 3)])
        assert k_core(g, 2) == {0, 1, 2}

    def test_kcore_empty_when_too_demanding(self):
        assert k_core(path_graph(5), 2) == set()


class TestTriangles:
    def test_triangle_count_at_vertex(self):
        g = from_edges([(0, 1), (1, 2), (2, 0), (0, 3)])
        assert triangles_at(g, 0) == 1
        assert triangles_at(g, 3) == 0


class TestSimpleCycles:
    def test_triangle_found_once(self):
        g = from_edges([(0, 1), (1, 2), (2, 0)])
        assert simple_cycles_upto(g, 3) == [(0, 1, 2)]

    def test_square_with_diagonal(self):
        g = from_edges([(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)])
        cycles = simple_cycles_upto(g, 4)
        lengths = sorted(len(c) for c in cycles)
        assert lengths == [3, 3, 4]

    def test_max_length_respected(self):
        g = from_edges([(0, 1), (1, 2), (2, 3), (3, 0)])
        assert simple_cycles_upto(g, 3) == []
        assert len(simple_cycles_upto(g, 4)) == 1

    def test_tree_has_no_cycles(self):
        assert simple_cycles_upto(path_graph(6), 6) == []

    def test_two_triangles_sharing_vertex(self):
        g = from_edges([(0, 1), (1, 2), (2, 0), (0, 3), (3, 4), (4, 0)])
        cycles = simple_cycles_upto(g, 6)
        assert len(cycles) == 2


class TestInducedEdges:
    def test_induced_edges(self):
        g = from_edges([(0, 1), (1, 2), (2, 0), (2, 3)])
        assert induced_edges(g, [0, 1, 2]) == [(0, 1), (0, 2), (1, 2)]

    def test_unknown_vertices_ignored(self):
        g = from_edges([(0, 1)])
        assert induced_edges(g, [0, 1, 9]) == [(0, 1)]
