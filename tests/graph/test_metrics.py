"""Tests for graph characterization metrics."""

import pytest

from repro.graph import from_edges
from repro.graph.generators import gnm_graph, webgraph
from repro.graph.graph import Graph
from repro.graph.metrics import (
    average_local_clustering,
    degeneracy,
    degree_assortativity,
    degree_ccdf,
    degree_histogram,
    density,
    global_clustering_coefficient,
    power_law_exponent_estimate,
    summary,
)


def triangle_with_tail():
    return from_edges([(0, 1), (1, 2), (2, 0), (2, 3)])


class TestDegreeDistribution:
    def test_histogram(self):
        assert degree_histogram(triangle_with_tail()) == {1: 1, 2: 2, 3: 1}

    def test_histogram_empty(self):
        assert degree_histogram(Graph()) == {}

    def test_ccdf_starts_at_one_and_decreases(self):
        ccdf = degree_ccdf(webgraph(200, seed=1))
        assert ccdf[0][1] == pytest.approx(1.0)
        values = [p for _d, p in ccdf]
        assert values == sorted(values, reverse=True)

    def test_ccdf_empty(self):
        assert degree_ccdf(Graph()) == []


class TestClustering:
    def test_clique_fully_clustered(self):
        k4 = from_edges([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
        assert global_clustering_coefficient(k4) == pytest.approx(1.0)
        assert average_local_clustering(k4) == pytest.approx(1.0)

    def test_tree_unclustered(self):
        star = from_edges([(0, 1), (0, 2), (0, 3)])
        assert global_clustering_coefficient(star) == 0.0
        assert average_local_clustering(star) == 0.0

    def test_triangle_with_tail(self):
        g = triangle_with_tail()
        # wedges: deg3 vertex has 3, two deg2 vertices have 1 each -> 5;
        # closed wedges = 3 (one triangle counted at each corner)
        assert global_clustering_coefficient(g) == pytest.approx(3 / 5)

    def test_empty(self):
        assert global_clustering_coefficient(Graph()) == 0.0
        assert average_local_clustering(Graph()) == 0.0


class TestAssortativityDensityDegeneracy:
    def test_star_disassortative(self):
        star = from_edges([(0, i) for i in range(1, 8)])
        assert degree_assortativity(star) < 0

    def test_clique_assortativity_degenerate(self):
        k3 = from_edges([(0, 1), (1, 2), (2, 0)])
        assert degree_assortativity(k3) == 0.0  # zero degree variance

    def test_density_bounds(self):
        k3 = from_edges([(0, 1), (1, 2), (2, 0)])
        assert density(k3) == pytest.approx(1.0)
        path = from_edges([(0, 1), (1, 2)])
        assert 0 < density(path) < 1
        assert density(Graph()) == 0.0

    def test_degeneracy(self):
        k4 = from_edges([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
        assert degeneracy(k4) == 3
        tree = from_edges([(0, 1), (1, 2), (2, 3)])
        assert degeneracy(tree) == 1
        assert degeneracy(Graph()) == 0

    def test_power_law_estimate_positive_on_scale_free(self):
        alpha = power_law_exponent_estimate(webgraph(800, seed=2))
        assert alpha > 1.5

    def test_power_law_degenerate(self):
        assert power_law_exponent_estimate(from_edges([(0, 1)])) == 0.0


class TestSummary:
    def test_all_keys_present(self):
        report = summary(gnm_graph(50, 120, seed=3))
        for key in (
            "num_vertices", "num_edges", "d_max", "d_avg", "d_stdev",
            "density", "global_clustering", "avg_local_clustering",
            "assortativity", "degeneracy", "power_law_alpha",
        ):
            assert key in report

    def test_scale_free_vs_uniform_signatures(self):
        scale_free = summary(webgraph(600, seed=4))
        uniform = summary(gnm_graph(600, 1800, seed=4))
        # hubs -> higher degree stdev relative to mean
        assert (
            scale_free["d_stdev"] / scale_free["d_avg"]
            > uniform["d_stdev"] / uniform["d_avg"]
        )
