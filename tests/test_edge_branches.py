"""Edge-branch tests: small behaviors not covered by the main suites."""

import pytest

from repro.core import (
    PatternTemplate,
    PipelineOptions,
    SearchState,
    generate_prototypes,
    run_pipeline,
)
from repro.errors import GraphError, PipelineError
from repro.graph import from_edges
from repro.graph.generators import planted_graph
from repro.graph.graph import Graph
from repro.runtime import CostModel, Engine, MessageStats, PartitionedGraph, Visitor


class TestCliGenerateRmat:
    def test_generate_rmat(self, tmp_path, capsys):
        from repro.cli import main

        output = tmp_path / "r.edges"
        code = main(["generate", "rmat", str(output), "--size", "300"])
        assert code == 0
        assert output.exists()


class TestEngineContext:
    def test_context_exposes_graph_and_pgraph(self):
        g = from_edges([(0, 1)])
        pg = PartitionedGraph(g, 1)
        engine = Engine(pg)
        seen = {}

        def visit(ctx, vis):
            seen["graph"] = ctx.graph
            seen["pgraph"] = ctx.pgraph

        engine.do_traversal([Visitor(0)], visit)
        assert seen["graph"] is g
        assert seen["pgraph"] is pg


class TestCostModelEdgeCases:
    def test_empty_stats_costs_nothing(self):
        assert CostModel(barrier_cost=0.0).makespan(MessageStats(2)) == 0.0

    def test_barrier_cost_only(self):
        stats = MessageStats(1)
        stats.barrier()
        stats.barrier()
        model = CostModel(barrier_cost=0.5)
        assert model.makespan(stats) == pytest.approx(1.0)


class TestSingleVertexTemplatePipeline:
    def test_label_lookup_semantics(self):
        template = PatternTemplate.from_edges([], labels={0: 7})
        graph = from_edges([(0, 1), (1, 2)], labels={0: 7, 1: 8, 2: 7})
        result = run_pipeline(graph, template, 0, PipelineOptions(num_ranks=1))
        assert result.matched_vertices() == {0, 2}

    def test_isolated_vertices_match_single_vertex_template(self):
        template = PatternTemplate.from_edges([], labels={0: 7})
        graph = Graph()
        graph.add_vertex(5, 7)
        result = run_pipeline(graph, template, 0, PipelineOptions(num_ranks=1))
        assert result.matched_vertices() == {5}


class TestEmptyAndDegenerateInputs:
    def test_empty_background_graph(self):
        template = PatternTemplate.from_edges([(0, 1)], labels={0: 1, 1: 2})
        result = run_pipeline(Graph(), template, 1, PipelineOptions(num_ranks=2))
        assert result.match_vectors == {}
        assert result.candidate_set_vertices == 0

    def test_no_matching_labels_at_all(self):
        template = PatternTemplate.from_edges([(0, 1)], labels={0: 90, 1: 91})
        graph = from_edges([(0, 1)], labels={0: 1, 1: 2})
        result = run_pipeline(graph, template, 1, PipelineOptions(num_ranks=2))
        assert result.match_vectors == {}

    def test_template_larger_than_graph(self):
        template = PatternTemplate.from_edges(
            [(0, 1), (1, 2), (2, 3)], labels={0: 1, 1: 1, 2: 1, 3: 1}
        )
        graph = from_edges([(0, 1)], labels={0: 1, 1: 1})
        result = run_pipeline(graph, template, 1, PipelineOptions(num_ranks=1))
        assert result.match_vectors == {}


class TestStateEdgeCases:
    def test_for_prototype_search_on_empty_state(self):
        template = PatternTemplate.from_edges([(0, 1)], labels={0: 1, 1: 2})
        graph = from_edges([(0, 1)], labels={0: 1, 1: 2})
        empty = SearchState.empty(graph)
        proto = generate_prototypes(template, 0).at(0)[0]
        scoped = empty.for_prototype_search(proto)
        assert scoped.num_active_vertices == 0

    def test_union_with_empty(self):
        template = PatternTemplate.from_edges([(0, 1)], labels={0: 1, 1: 2})
        graph = from_edges([(0, 1)], labels={0: 1, 1: 2})
        state = SearchState.initial(graph, template)
        before = state.num_active_vertices
        state.union_with(SearchState.empty(graph))
        assert state.num_active_vertices == before


class TestMixedRolesVertices:
    def test_vertex_matching_multiple_roles(self):
        """One vertex participating as two different template vertices."""
        template = PatternTemplate.from_edges(
            [(0, 1), (1, 2)], labels={0: 1, 1: 2, 2: 1}
        )
        # Path 1-2-1-2-1: middle label-1 vertex plays both endpoint roles.
        graph = from_edges(
            [(0, 1), (1, 2), (2, 3), (3, 4)],
            labels={0: 1, 1: 2, 2: 1, 3: 2, 4: 1},
        )
        result = run_pipeline(graph, template, 0, PipelineOptions(num_ranks=2))
        assert 2 in result.matched_vertices()
        from repro.graph.isomorphism import find_subgraph_isomorphisms

        expected = {
            v
            for m in find_subgraph_isomorphisms(template.graph, graph)
            for v in m.values()
        }
        assert result.matched_vertices() == expected


class TestReloadInteractions:
    def test_reload_with_parallel_deployments(self):
        edges = [(0, 1), (1, 2), (2, 0)]
        graph = planted_graph(40, 90, edges, [1, 2, 3], copies=2, seed=81)
        template = PatternTemplate.from_edges(
            edges, {0: 1, 1: 2, 2: 3}, name="t"
        )
        reference = run_pipeline(graph, template, 1, PipelineOptions(num_ranks=8))
        combo = run_pipeline(
            graph, template, 1,
            PipelineOptions(num_ranks=8, reload_ranks=4, parallel_deployments=2,
                            load_balance="reshuffle"),
        )
        assert combo.match_vectors == reference.match_vectors

    def test_reload_larger_than_ranks_is_allowed(self):
        edges = [(0, 1)]
        graph = from_edges(edges, labels={0: 1, 1: 2})
        template = PatternTemplate.from_edges(edges, {0: 1, 1: 2})
        result = run_pipeline(
            graph, template, 0,
            PipelineOptions(num_ranks=2, reload_ranks=4),
        )
        assert result is not None


class TestGraphMiscellanea:
    def test_vertices_iteration_order_stable(self):
        g = Graph()
        for v in (5, 3, 9):
            g.add_vertex(v, 0)
        assert list(g.vertices()) == [5, 3, 9]

    def test_edge_label_of_absent_edge_is_none(self):
        g = from_edges([(0, 1)])
        assert g.edge_label(0, 2) is None

    def test_len_and_contains(self):
        g = from_edges([(0, 1)])
        assert len(g) == 2
        assert 0 in g and 7 not in g
